package server

import (
	"context"
	"fmt"
	"sync"

	"nwhy"
)

// mutState is one dataset's writer state: a mutex serializing that dataset's
// mutators (so mutations on different datasets never contend) plus the
// staged-but-uncommitted batch the compaction policy is accumulating.
type mutState struct {
	mu      sync.Mutex
	g       *nwhy.NWHypergraph // handle pending was begun against
	pending *nwhy.Mutation
	staged  int
}

// mutStateFor returns (creating if needed) the writer state for a dataset.
func (s *Server) mutStateFor(name string) *mutState {
	s.mutMu.Lock()
	defer s.mutMu.Unlock()
	ms, ok := s.muts[name]
	if !ok {
		ms = &mutState{}
		s.muts[name] = ms
	}
	return ms
}

// sccKey identifies one maintained s-CC view.
type sccKey struct {
	dataset string
	s       int
}

// sccEntry binds a maintained view to the exact facade handle it tracks, so
// a registry swap (same name, different handle) is detected and the view
// rebuilt instead of serving components of a dataset that no longer exists.
type sccEntry struct {
	g    *nwhy.NWHypergraph
	view *nwhy.IncrementalSCC
}

// incrementalSCC returns the maintained s-CC view for (dataset, s) on g,
// creating or replacing it when none exists or the registry handle changed.
func (s *Server) incrementalSCC(dataset string, sThresh int, g *nwhy.NWHypergraph) *nwhy.IncrementalSCC {
	key := sccKey{dataset: dataset, s: sThresh}
	s.sccMu.Lock()
	defer s.sccMu.Unlock()
	e, ok := s.sccs[key]
	if !ok || e.g != g {
		e = &sccEntry{g: g, view: g.IncrementalSCC(sThresh)}
		s.sccs[key] = e
	}
	return e.view
}

// EdgeOp is one staged mutation operation.
type EdgeOp struct {
	// Op is "add" (hyperedge over Members) or "remove" (hyperedge ID).
	Op      string   `json:"op"`
	Members []uint32 `json:"members,omitempty"`
	ID      uint32   `json:"id,omitempty"`
}

// MutateRequest stages a batch of hyperedge operations against a dataset.
type MutateRequest struct {
	Dataset string
	Ops     []EdgeOp
	// Commit forces the staged batch into a new snapshot even when the
	// compaction policy would keep accumulating.
	Commit bool
}

// MutateResult reports what a Mutate call did. Added carries the hyperedge
// ID assigned to each "add" op, in request order. When Committed is false
// the operations are staged only: invisible to queries until the compaction
// policy (or an explicit Compact) folds them in.
type MutateResult struct {
	Dataset   string   `json:"dataset"`
	Added     []uint32 `json:"added,omitempty"`
	Removed   int      `json:"removed"`
	Committed bool     `json:"committed"`
	// Pending is the number of staged operations still awaiting compaction.
	Pending int `json:"pending"`
	// Epoch is the dataset's mutation epoch after the call.
	Epoch uint64 `json:"epoch"`
}

// applyOps stages req's operations onto m, returning the assigned IDs for
// adds and the remove count.
func applyOps(m *nwhy.Mutation, ops []EdgeOp) (added []uint32, removed int, err error) {
	for i, op := range ops {
		switch op.Op {
		case "add":
			id, err := m.AddEdge(op.Members)
			if err != nil {
				return nil, 0, fmt.Errorf("%w: op %d: %v", ErrBadRequest, i, err)
			}
			added = append(added, id)
		case "remove":
			if err := m.RemoveEdge(op.ID); err != nil {
				return nil, 0, fmt.Errorf("%w: op %d: %v", ErrBadRequest, i, err)
			}
			removed++
		default:
			return nil, 0, fmt.Errorf("%w: op %d: unknown op %q (want add|remove)", ErrBadRequest, i, op.Op)
		}
	}
	return added, removed, nil
}

// Mutate stages (and, per the compaction policy, commits) a batch of
// hyperedge insertions and removals against one dataset. Writers to the same
// dataset are serialized; concurrent readers keep seeing the last committed
// snapshot until the commit atomically swaps the new one in. Any failing
// operation discards the whole pending batch — partially applied staging is
// never retained.
func (s *Server) Mutate(ctx context.Context, req MutateRequest) (MutateResult, error) {
	var out MutateResult
	err := s.do(ctx, "mutate", func(ctx context.Context) error {
		g, err := s.dataset(req.Dataset)
		if err != nil {
			return err
		}
		ms := s.mutStateFor(req.Dataset)
		ms.mu.Lock()
		defer ms.mu.Unlock()
		// A registry swap orphans any batch staged against the old handle.
		if ms.pending != nil && ms.g != g {
			ms.pending, ms.staged = nil, 0
		}
		if ms.pending == nil {
			m, err := g.BeginMutation()
			if err != nil {
				return fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
			ms.g, ms.pending = g, m
		}
		added, removed, err := applyOps(ms.pending, req.Ops)
		if err != nil {
			ms.pending, ms.staged = nil, 0
			return err
		}
		ms.staged += len(req.Ops)
		out = MutateResult{Dataset: req.Dataset, Added: added, Removed: removed}
		if req.Commit || ms.staged >= s.compactEvery {
			// ms.mu is the per-dataset single-writer serialization: holding
			// it across the commit is the design (CommitCtx CAS-fails on
			// concurrent writers; queries never take this lock).
			if err := ms.pending.CommitCtx(ctx); err != nil { //nwhy:nolint(locks-balanced) single-writer lock held across commit by design
				ms.pending, ms.staged = nil, 0
				return err
			}
			ms.pending, ms.staged = nil, 0
			out.Committed = true
		}
		out.Pending, out.Epoch = ms.staged, g.Epoch()
		return nil
	})
	return out, err
}

// CompactResult reports a Compact call: whether a staged batch was folded
// into a new snapshot, and the dataset's epoch afterwards.
type CompactResult struct {
	Dataset   string `json:"dataset"`
	Committed bool   `json:"committed"`
	Flushed   int    `json:"flushed"`
	Epoch     uint64 `json:"epoch"`
}

// Compact forces the dataset's staged-but-uncommitted operations into a new
// frozen snapshot regardless of the compaction policy. With nothing staged
// it is a cheap no-op.
func (s *Server) Compact(ctx context.Context, dataset string) (CompactResult, error) {
	var out CompactResult
	err := s.do(ctx, "compact", func(ctx context.Context) error {
		g, err := s.dataset(dataset)
		if err != nil {
			return err
		}
		ms := s.mutStateFor(dataset)
		ms.mu.Lock()
		defer ms.mu.Unlock()
		out = CompactResult{Dataset: dataset}
		if ms.pending != nil && ms.g != g {
			ms.pending, ms.staged = nil, 0
		}
		if ms.pending != nil {
			flushed := ms.staged
			if err := ms.pending.CommitCtx(ctx); err != nil { //nwhy:nolint(locks-balanced) single-writer lock held across commit by design
				ms.pending, ms.staged = nil, 0
				return err
			}
			ms.pending, ms.staged = nil, 0
			out.Committed, out.Flushed = true, flushed
		}
		out.Epoch = g.Epoch()
		return nil
	})
	return out, err
}

// PendingOps reports how many staged operations a dataset has awaiting
// compaction (0 for unknown datasets — this is a gauge, not a query).
func (s *Server) PendingOps(dataset string) int {
	s.mutMu.Lock()
	ms, ok := s.muts[dataset]
	s.mutMu.Unlock()
	if !ok {
		return 0
	}
	ms.mu.Lock()
	defer ms.mu.Unlock()
	return ms.staged
}
