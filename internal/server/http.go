package server

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"time"

	"nwhy"
)

// Handler returns the server's HTTP surface: one GET endpoint per query
// kind, every parameter in the query string, every response JSON. The
// handler holds no state of its own — it is a thin codec over the Server
// methods, and every request's context reaches the kernels.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.metricsVar())
	mux.HandleFunc("GET /datasets", s.handleDatasets)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /toplexes", s.handleToplexes)
	mux.HandleFunc("GET /slinegraph", s.handleSLine)
	mux.HandleFunc("GET /scc", s.handleSCC)
	mux.HandleFunc("GET /sdistance", s.handleSDistance)
	mux.HandleFunc("GET /spath", s.handleSPath)
	mux.HandleFunc("GET /centrality", s.handleCentrality)
	mux.HandleFunc("POST /mutate", s.handleMutate)
	mux.HandleFunc("POST /compact", s.handleCompact)
	return mux
}

// metricsVar composes the /metrics payload from expvar primitives: each
// gauge is an expvar.Func evaluated at serve time, assembled into one
// expvar.Map held per server (deliberately not Published into the process
// globals, so tests can build any number of servers).
func (s *Server) metricsVar() http.Handler {
	m := new(expvar.Map).Init()
	gauge := func(name string, f func() any) { m.Set(name, expvar.Func(f)) }
	gauge("uptime_seconds", func() any { return time.Since(s.start).Seconds() })
	gauge("in_flight", func() any { return s.adm.InFlight() })
	gauge("queue_depth", func() any { return s.adm.QueueDepth() })
	gauge("admission", func() any {
		admitted, rejected, timedOut, cancelled := s.adm.Counters()
		return map[string]int64{
			"admitted": admitted, "rejected": rejected,
			"timed_out": timedOut, "cancelled": cancelled,
		}
	})
	gauge("cache", func() any {
		hits, misses, waits := s.cache.Stats()
		return map[string]int64{
			"entries": int64(s.cache.Len()),
			"hits":    hits, "misses": misses, "waits": waits,
			"evictions": s.cache.Evictions(),
		}
	})
	gauge("endpoints", func() any { return s.met.snapshot() })
	gauge("engine_workers", func() any { return s.eng.NumWorkers() })
	gauge("datasets", func() any {
		out := map[string]map[string]any{}
		for _, n := range s.reg.Names() {
			g, err := s.reg.Get(n)
			if err != nil {
				continue // racing a concurrent removal is fine
			}
			out[n] = map[string]any{
				"epoch":       g.Epoch(),
				"pending_ops": s.PendingOps(n),
			}
		}
		return out
	})
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		fmt.Fprint(w, m.String())
	})
}

// statusFor maps the serving core's sentinel errors onto HTTP status codes.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrUnknownDataset):
		return http.StatusNotFound
	case errors.Is(err, ErrOverloaded):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrQueueTimeout),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(statusFor(err))
	_ = json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// qInt parses an integer query parameter, returning def when absent.
func qInt(r *http.Request, name string, def int) (int, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil {
		return 0, fmt.Errorf("%w: %s=%q is not an integer", ErrBadRequest, name, v)
	}
	return n, nil
}

// qBool parses a boolean query parameter, returning def when absent.
func qBool(r *http.Request, name string, def bool) (bool, error) {
	v := r.URL.Query().Get(name)
	if v == "" {
		return def, nil
	}
	b, err := strconv.ParseBool(v)
	if err != nil {
		return false, fmt.Errorf("%w: %s=%q is not a boolean", ErrBadRequest, name, v)
	}
	return b, nil
}

// qStrategy parses the strategy parameter onto the kernel counter axis.
func qStrategy(r *http.Request) (nwhy.Strategy, error) {
	switch v := r.URL.Query().Get("strategy"); v {
	case "", "auto":
		return nwhy.StrategyAuto, nil
	case "hashmap":
		return nwhy.StrategyHashmap, nil
	case "dense":
		return nwhy.StrategyDense, nil
	case "intersection":
		return nwhy.StrategyIntersection, nil
	default:
		return 0, fmt.Errorf("%w: unknown strategy %q (want auto|hashmap|dense|intersection)", ErrBadRequest, v)
	}
}

// qPrune parses the prune parameter onto the kernel's pruning axis.
func qPrune(r *http.Request) (nwhy.Prune, error) {
	switch v := r.URL.Query().Get("prune"); v {
	case "", "auto":
		return nwhy.PruneAuto, nil
	case "none":
		return nwhy.PruneNone, nil
	case "degree":
		return nwhy.PruneDegree, nil
	case "connectivity":
		return nwhy.PruneConnectivity, nil
	case "toplex":
		return nwhy.PruneToplex, nil
	default:
		return 0, fmt.Errorf("%w: unknown prune %q (want auto|none|degree|connectivity|toplex)", ErrBadRequest, v)
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, s.Health())
}

func (s *Server) handleDatasets(w http.ResponseWriter, r *http.Request) {
	out, err := s.Datasets(r.Context())
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, out)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	out, err := s.Stats(r.Context(), r.URL.Query().Get("dataset"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, out)
}

func (s *Server) handleToplexes(w http.ResponseWriter, r *http.Request) {
	out, err := s.Toplexes(r.Context(), r.URL.Query().Get("dataset"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, out)
}

func (s *Server) handleSLine(w http.ResponseWriter, r *http.Request) {
	req := SLineRequest{Dataset: r.URL.Query().Get("dataset")}
	var err error
	if req.S, err = qInt(r, "s", 1); err != nil {
		writeErr(w, err)
		return
	}
	if req.Edges, err = qBool(r, "edges", true); err != nil {
		writeErr(w, err)
		return
	}
	if req.Weighted, err = qBool(r, "weighted", false); err != nil {
		writeErr(w, err)
		return
	}
	if req.Strategy, err = qStrategy(r); err != nil {
		writeErr(w, err)
		return
	}
	if req.Prune, err = qPrune(r); err != nil {
		writeErr(w, err)
		return
	}
	out, err := s.SLine(r.Context(), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, out)
}

func (s *Server) handleSCC(w http.ResponseWriter, r *http.Request) {
	req := SCCRequest{Dataset: r.URL.Query().Get("dataset")}
	var err error
	if req.S, err = qInt(r, "s", 1); err != nil {
		writeErr(w, err)
		return
	}
	if req.Direct, err = qBool(r, "direct", false); err != nil {
		writeErr(w, err)
		return
	}
	if req.Incremental, err = qBool(r, "incremental", false); err != nil {
		writeErr(w, err)
		return
	}
	if req.Sharded, err = qBool(r, "sharded", false); err != nil {
		writeErr(w, err)
		return
	}
	if req.Parts, err = qInt(r, "parts", 0); err != nil {
		writeErr(w, err)
		return
	}
	if req.WithLabels, err = qBool(r, "labels", false); err != nil {
		writeErr(w, err)
		return
	}
	if req.Strategy, err = qStrategy(r); err != nil {
		writeErr(w, err)
		return
	}
	if req.Prune, err = qPrune(r); err != nil {
		writeErr(w, err)
		return
	}
	out, err := s.SComponents(r.Context(), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, out)
}

func (s *Server) distanceRequest(r *http.Request) (SDistanceRequest, error) {
	req := SDistanceRequest{Dataset: r.URL.Query().Get("dataset")}
	var err error
	if req.S, err = qInt(r, "s", 1); err != nil {
		return req, err
	}
	if req.Src, err = qInt(r, "src", -1); err != nil {
		return req, err
	}
	if req.Dst, err = qInt(r, "dst", -1); err != nil {
		return req, err
	}
	if req.Weighted, err = qBool(r, "weighted", false); err != nil {
		return req, err
	}
	return req, nil
}

func (s *Server) handleSDistance(w http.ResponseWriter, r *http.Request) {
	req, err := s.distanceRequest(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	out, err := s.SDistance(r.Context(), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	// +Inf is not valid JSON; the reachable flag already carries the fact.
	if !out.Reachable {
		out.Distance = -1
	}
	writeJSON(w, out)
}

func (s *Server) handleSPath(w http.ResponseWriter, r *http.Request) {
	req, err := s.distanceRequest(r)
	if err != nil {
		writeErr(w, err)
		return
	}
	out, err := s.SPath(r.Context(), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, out)
}

// topScores reduces a score vector to its top-k (id, score) pairs, ties
// broken by lower ID. k <= 0 keeps the full vector.
func topScores(scores []float64, k int) []ScoreEntry {
	out := make([]ScoreEntry, len(scores))
	for i, v := range scores {
		out[i] = ScoreEntry{ID: i, Score: v}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	if k > 0 && k < len(out) {
		out = out[:k]
	}
	return out
}

// ScoreEntry is one (hyperedge, score) row of a top-k centrality response.
type ScoreEntry struct {
	ID    int     `json:"id"`
	Score float64 `json:"score"`
}

// centralityHTTPResult is CentralityResult with the top-k reduction applied
// at the HTTP layer (the Server method always returns the full vector).
type centralityHTTPResult struct {
	CentralityResult
	Top []ScoreEntry `json:"top,omitempty"`
}

func (s *Server) handleCentrality(w http.ResponseWriter, r *http.Request) {
	req := CentralityRequest{
		Dataset: r.URL.Query().Get("dataset"),
		Kind:    CentralityKind(r.URL.Query().Get("kind")),
	}
	var err error
	if req.S, err = qInt(r, "s", 1); err != nil {
		writeErr(w, err)
		return
	}
	if req.Normalized, err = qBool(r, "normalized", false); err != nil {
		writeErr(w, err)
		return
	}
	if req.Weighted, err = qBool(r, "weighted", false); err != nil {
		writeErr(w, err)
		return
	}
	top, err := qInt(r, "top", 0)
	if err != nil {
		writeErr(w, err)
		return
	}
	out, err := s.Centrality(r.Context(), req)
	if err != nil {
		writeErr(w, err)
		return
	}
	// Eccentricity of disconnected graphs carries +Inf, which JSON cannot
	// encode; map it to -1 (the same convention as unreachable distances).
	for i, v := range out.Scores {
		if isInf(v) {
			out.Scores[i] = -1
		}
	}
	if top > 0 {
		writeJSON(w, centralityHTTPResult{CentralityResult: out, Top: topScores(out.Scores, top)})
		return
	}
	writeJSON(w, out)
}

// mutateBody is the POST /mutate wire format.
type mutateBody struct {
	Dataset string   `json:"dataset"`
	Ops     []EdgeOp `json:"ops"`
	Commit  bool     `json:"commit"`
}

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var body mutateBody
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeErr(w, fmt.Errorf("%w: invalid JSON body: %v", ErrBadRequest, err))
		return
	}
	out, err := s.Mutate(r.Context(), MutateRequest{Dataset: body.Dataset, Ops: body.Ops, Commit: body.Commit})
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, out)
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	out, err := s.Compact(r.Context(), r.URL.Query().Get("dataset"))
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, out)
}
