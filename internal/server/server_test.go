package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"nwhy"
)

// twoIslands is 5 hyperedges over 8 nodes forming two 1-connected islands:
// {e0,e1,e2} chained via shared nodes and {e3,e4}.
func twoIslands() [][]uint32 {
	return [][]uint32{
		{0, 1, 2},
		{2, 3},
		{3, 4},
		{5, 6},
		{6, 7},
	}
}

func testServer(t *testing.T, cfg Config) (*Server, *nwhy.Engine) {
	t.Helper()
	eng := nwhy.NewEngine(4)
	if cfg.Engine == nil {
		cfg.Engine = eng
	}
	reg := NewRegistry()
	reg.Add("tiny", nwhy.FromSets(twoIslands(), 8).WithEngine(cfg.Engine), "")
	s, err := New(cfg, reg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s, cfg.Engine
}

func TestSLineCacheHitAndMiss(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx := context.Background()
	req := SLineRequest{Dataset: "tiny", S: 1, Edges: true}

	first, err := s.SLine(ctx, req)
	if err != nil {
		t.Fatalf("SLine: %v", err)
	}
	if first.CacheHit {
		t.Fatal("first construction reported a cache hit")
	}
	if first.NumVertices != 5 || first.NumEdges != 3 {
		t.Fatalf("shape = (%d,%d), want (5,3)", first.NumVertices, first.NumEdges)
	}
	second, err := s.SLine(ctx, req)
	if err != nil {
		t.Fatalf("SLine (repeat): %v", err)
	}
	if !second.CacheHit {
		t.Fatal("repeated construction missed the cache")
	}
	hits, misses, _ := s.Cache().Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("cache stats = %d hits / %d misses, want 1/1", hits, misses)
	}
	// A different key is a fresh miss.
	if r, err := s.SLine(ctx, SLineRequest{Dataset: "tiny", S: 2, Edges: true}); err != nil || r.CacheHit {
		t.Fatalf("s=2: err=%v hit=%v, want fresh miss", err, r.CacheHit)
	}
}

func TestSLineValidation(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx := context.Background()
	if _, err := s.SLine(ctx, SLineRequest{Dataset: "tiny", S: 0, Edges: true}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("s=0 err = %v, want ErrBadRequest", err)
	}
	if _, err := s.SLine(ctx, SLineRequest{Dataset: "tiny", S: 1, Weighted: true}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("weighted node-line err = %v, want ErrBadRequest", err)
	}
	if _, err := s.SLine(ctx, SLineRequest{Dataset: "nope", S: 1, Edges: true}); !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("unknown dataset err = %v, want ErrUnknownDataset", err)
	}
}

// TestSCCPruneLevels: every prune level yields identical component labels
// through the serving layer, and the HTTP prune parameter round-trips
// (bogus values map to 400).
func TestSCCPruneLevels(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx := context.Background()

	base, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, Direct: true, WithLabels: true})
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	for _, p := range []nwhy.Prune{nwhy.PruneAuto, nwhy.PruneNone, nwhy.PruneDegree, nwhy.PruneConnectivity, nwhy.PruneToplex} {
		r, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, Prune: p, WithLabels: true})
		if err != nil {
			t.Fatalf("prune=%v: %v", p, err)
		}
		if r.NumComponents != base.NumComponents {
			t.Fatalf("prune=%v: %d components, want %d", p, r.NumComponents, base.NumComponents)
		}
		for i := range base.Labels {
			if r.Labels[i] != base.Labels[i] {
				t.Fatalf("prune=%v: label[%d] = %d, want %d", p, i, r.Labels[i], base.Labels[i])
			}
		}
	}

	srv := httptest.NewServer(s.Handler())
	defer srv.Close()
	for path, want := range map[string]int{
		"/scc?dataset=tiny&s=1&prune=toplex":        200,
		"/scc?dataset=tiny&s=1&prune=none":          200,
		"/scc?dataset=tiny&s=1&prune=bogus":         400,
		"/slinegraph?dataset=tiny&s=1&prune=degree": 200,
		"/slinegraph?dataset=tiny&s=1&prune=nope":   400,
	} {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Fatalf("GET %s status = %d, want %d", path, resp.StatusCode, want)
		}
	}
}

func TestSComponentsCachedMatchesDirect(t *testing.T) {
	s, eng := testServer(t, Config{})
	ctx := context.Background()

	direct, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, Direct: true, WithLabels: true})
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	cached, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, WithLabels: true})
	if err != nil {
		t.Fatalf("cached: %v", err)
	}
	if direct.NumComponents != 2 || cached.NumComponents != 2 {
		t.Fatalf("components = %d (direct) / %d (cached), want 2", direct.NumComponents, cached.NumComponents)
	}
	if len(direct.Labels) != len(cached.Labels) {
		t.Fatalf("label lengths differ: %d vs %d", len(direct.Labels), len(cached.Labels))
	}
	for i := range direct.Labels {
		if direct.Labels[i] != cached.Labels[i] {
			t.Fatalf("label[%d] = %d (direct) vs %d (cached)", i, direct.Labels[i], cached.Labels[i])
		}
	}
	// Serial ground truth straight off the facade.
	want := nwhy.FromSets(twoIslands(), 8).WithEngine(eng).SConnectedComponentsDirect(1)
	for i := range want {
		if direct.Labels[i] != want[i] {
			t.Fatalf("label[%d] = %d, want %d", i, direct.Labels[i], want[i])
		}
	}
}

func TestSDistanceAndSPath(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx := context.Background()

	d, err := s.SDistance(ctx, SDistanceRequest{Dataset: "tiny", S: 1, Src: 0, Dst: 2})
	if err != nil {
		t.Fatalf("SDistance: %v", err)
	}
	if !d.Reachable || d.Distance != 2 {
		t.Fatalf("distance(0,2) = %+v, want reachable 2", d)
	}
	cross, err := s.SDistance(ctx, SDistanceRequest{Dataset: "tiny", S: 1, Src: 0, Dst: 4})
	if err != nil {
		t.Fatalf("SDistance cross-island: %v", err)
	}
	if cross.Reachable {
		t.Fatalf("distance(0,4) = %+v, want unreachable", cross)
	}
	p, err := s.SPath(ctx, SDistanceRequest{Dataset: "tiny", S: 1, Src: 0, Dst: 2})
	if err != nil {
		t.Fatalf("SPath: %v", err)
	}
	if len(p.Path) != 3 || p.Path[0] != 0 || p.Path[2] != 2 {
		t.Fatalf("path(0,2) = %v, want [0 1 2]", p.Path)
	}
	if _, err := s.SDistance(ctx, SDistanceRequest{Dataset: "tiny", S: 1, Src: 0, Dst: 99}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("out-of-range dst err = %v, want ErrBadRequest", err)
	}
}

func TestCentralityKinds(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx := context.Background()
	for _, kind := range []CentralityKind{CentralityBetweenness, CentralityCloseness, CentralityHarmonic, CentralityEccentricity, CentralityPageRank} {
		out, err := s.Centrality(ctx, CentralityRequest{Dataset: "tiny", S: 1, Kind: kind})
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(out.Scores) != 5 {
			t.Fatalf("%s: %d scores, want 5", kind, len(out.Scores))
		}
	}
	if _, err := s.Centrality(ctx, CentralityRequest{Dataset: "tiny", S: 1, Kind: "nope"}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("unknown kind err = %v, want ErrBadRequest", err)
	}
	if _, err := s.Centrality(ctx, CentralityRequest{Dataset: "tiny", S: 1, Kind: CentralityPageRank, Weighted: true}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("weighted pagerank err = %v, want ErrBadRequest", err)
	}
}

func TestAdmissionQueueBounds(t *testing.T) {
	a := NewAdmission(1, 1, 50*time.Millisecond)
	release, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("first Acquire: %v", err)
	}
	if a.InFlight() != 1 {
		t.Fatalf("InFlight = %d, want 1", a.InFlight())
	}

	// One waiter is allowed and times out once the deadline passes.
	var wg sync.WaitGroup
	wg.Add(1)
	waiterErr := make(chan error, 1)
	started := make(chan struct{})
	go func() {
		defer wg.Done()
		close(started)
		_, err := a.Acquire(context.Background())
		waiterErr <- err
	}()
	<-started
	// Wait until the waiter is actually queued before probing the bound.
	for a.QueueDepth() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := a.Acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("over-queue Acquire err = %v, want ErrOverloaded", err)
	}
	if err := <-waiterErr; !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued Acquire err = %v, want ErrQueueTimeout", err)
	}
	wg.Wait()

	// A cancelled caller leaves the queue immediately.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Acquire(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Acquire err = %v, want context.Canceled", err)
	}

	// Releasing the slot lets the next query in; release is idempotent.
	release()
	release()
	if a.InFlight() != 0 {
		t.Fatalf("InFlight after release = %d, want 0", a.InFlight())
	}
	r2, err := a.Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire after release: %v", err)
	}
	r2()
}

func TestServerRejectsWhenOverloaded(t *testing.T) {
	s, _ := testServer(t, Config{MaxInFlight: 1, MaxQueue: 1, QueueWait: 20 * time.Millisecond})
	// Occupy the only slot directly.
	release, err := s.Admission().Acquire(context.Background())
	if err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	defer release()
	if _, err := s.Stats(context.Background(), "tiny"); !errors.Is(err, ErrQueueTimeout) {
		t.Fatalf("queued Stats err = %v, want ErrQueueTimeout", err)
	}
	snaps := s.Metrics()
	if len(snaps) != 1 || snaps[0].Endpoint != "stats" || snaps[0].Rejected != 1 {
		t.Fatalf("metrics = %+v, want one stats row with Rejected=1", snaps)
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewSLineCache(4)
	key := CacheKey{Dataset: "d", S: 1, Edges: true}
	var builds int
	var mu sync.Mutex
	barrier := make(chan struct{})

	build := func() (*nwhy.SLineGraph, *nwhy.WeightedSLineGraph, error) {
		mu.Lock()
		builds++
		mu.Unlock()
		<-barrier
		return &nwhy.SLineGraph{}, nil, nil
	}

	const callers = 8
	var wg sync.WaitGroup
	results := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _, hit, err := c.Get(context.Background(), key, build)
			if err != nil {
				t.Errorf("Get: %v", err)
			}
			results[i] = hit
		}(i)
	}
	// Let the flight start, then release it.
	for {
		mu.Lock()
		n := builds
		mu.Unlock()
		if n > 0 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(barrier)
	wg.Wait()

	if builds != 1 {
		t.Fatalf("builds = %d, want 1 (single flight)", builds)
	}
	missCount := 0
	for _, hit := range results {
		if !hit {
			missCount++
		}
	}
	if missCount != 1 {
		t.Fatalf("%d callers reported a miss, want exactly 1", missCount)
	}
}

func TestCacheErrorNotRetained(t *testing.T) {
	c := NewSLineCache(4)
	key := CacheKey{Dataset: "d", S: 1}
	boom := errors.New("boom")
	if _, _, _, err := c.Get(context.Background(), key, func() (*nwhy.SLineGraph, *nwhy.WeightedSLineGraph, error) {
		return nil, nil, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Len() != 0 {
		t.Fatalf("Len after failed build = %d, want 0", c.Len())
	}
	// The next request re-runs the build.
	if _, _, hit, err := c.Get(context.Background(), key, func() (*nwhy.SLineGraph, *nwhy.WeightedSLineGraph, error) {
		return &nwhy.SLineGraph{}, nil, nil
	}); err != nil || hit {
		t.Fatalf("retry: err=%v hit=%v, want fresh successful miss", err, hit)
	}
}

func TestCacheEviction(t *testing.T) {
	c := NewSLineCache(2)
	mk := func(s int) CacheKey { return CacheKey{Dataset: "d", S: s} }
	ok := func() (*nwhy.SLineGraph, *nwhy.WeightedSLineGraph, error) {
		return &nwhy.SLineGraph{}, nil, nil
	}
	for s := 1; s <= 3; s++ {
		if _, _, _, err := c.Get(context.Background(), mk(s), ok); err != nil {
			t.Fatalf("Get s=%d: %v", s, err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2 (LRU bound)", c.Len())
	}
	// s=1 was evicted; s=3 (most recent) is still a hit.
	if _, _, hit, _ := c.Get(context.Background(), mk(3), ok); !hit {
		t.Fatal("most-recent key was evicted")
	}
	if _, _, hit, _ := c.Get(context.Background(), mk(1), ok); hit {
		t.Fatal("least-recent key survived eviction")
	}
}

func TestRegistryWarmStart(t *testing.T) {
	dir := t.TempDir()
	eng := nwhy.NewEngine(2)
	seed := nwhy.FromSets(twoIslands(), 8)
	if err := seed.SaveSnapshot(filepath.Join(dir, "islands.nwhyb")); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	if err := seed.Save(filepath.Join(dir, "islands-text.mtx")); err != nil {
		t.Fatalf("Save: %v", err)
	}

	reg := NewRegistry()
	names, err := reg.WarmStart(context.Background(), eng, dir)
	if err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	if len(names) != 2 {
		t.Fatalf("loaded %v, want 2 datasets", names)
	}
	g, err := reg.Get("islands")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	// An unbound engine passes through Detach unchanged, so the handle is
	// bound to the serving engine itself.
	if g.Engine() != eng {
		t.Fatal("warm-started handle is not bound to the serving engine")
	}
	if g.NumEdges() != 5 || g.NumNodes() != 8 {
		t.Fatalf("shape = (%d,%d), want (5,8)", g.NumEdges(), g.NumNodes())
	}
	if src := reg.Source("islands"); !strings.HasSuffix(src, "islands.nwhyb") {
		t.Fatalf("source = %q, want the snapshot path", src)
	}

	// Cancelled warm starts keep what they loaded and report the ctx error.
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	reg2 := NewRegistry()
	if _, err := reg2.WarmStart(cancelled, eng, dir); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled WarmStart err = %v, want context.Canceled", err)
	}
}

func TestContextCancellationReachesKernels(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := s.SLine(ctx, SLineRequest{Dataset: "tiny", S: 1, Edges: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled SLine err = %v, want context.Canceled", err)
	}
	// The failed construction must not have been cached.
	if s.Cache().Len() != 0 {
		t.Fatalf("cache holds %d entries after a cancelled build, want 0", s.Cache().Len())
	}
}

func TestHTTPEndpoints(t *testing.T) {
	s, _ := testServer(t, Config{})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	get := func(t *testing.T, path string, wantStatus int, into any) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("GET %s status = %d, want %d", path, resp.StatusCode, wantStatus)
		}
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("GET %s decode: %v", path, err)
			}
		}
	}

	var health HealthResult
	get(t, "/healthz", 200, &health)
	if health.Status != "ok" || len(health.Datasets) != 1 {
		t.Fatalf("health = %+v", health)
	}

	var datasets []DatasetInfo
	get(t, "/datasets", 200, &datasets)
	if len(datasets) != 1 || datasets[0].Name != "tiny" || datasets[0].NumEdges != 5 {
		t.Fatalf("datasets = %+v", datasets)
	}

	var sl SLineResult
	get(t, "/slinegraph?dataset=tiny&s=1", 200, &sl)
	if sl.CacheHit || sl.NumVertices != 5 || sl.NumEdges != 3 {
		t.Fatalf("slinegraph = %+v", sl)
	}
	get(t, "/slinegraph?dataset=tiny&s=1", 200, &sl)
	if !sl.CacheHit {
		t.Fatalf("repeated slinegraph = %+v, want cache hit", sl)
	}

	var scc SCCResult
	get(t, "/scc?dataset=tiny&s=1&labels=true", 200, &scc)
	if scc.NumComponents != 2 || len(scc.Labels) != 5 {
		t.Fatalf("scc = %+v", scc)
	}

	var dist SDistanceResult
	get(t, "/sdistance?dataset=tiny&s=1&src=0&dst=4", 200, &dist)
	if dist.Reachable || dist.Distance != -1 {
		t.Fatalf("unreachable sdistance = %+v, want distance -1", dist)
	}

	var cent struct {
		CentralityResult
		Top []ScoreEntry `json:"top"`
	}
	get(t, "/centrality?dataset=tiny&s=1&kind=harmonic&top=2", 200, &cent)
	if len(cent.Scores) != 5 || len(cent.Top) != 2 {
		t.Fatalf("centrality = %+v", cent)
	}

	// Error mapping.
	get(t, "/stats?dataset=nope", 404, nil)
	get(t, "/slinegraph?dataset=tiny&s=zero", 400, nil)
	get(t, "/slinegraph?dataset=tiny&s=1&strategy=bogus", 400, nil)
	get(t, "/scc?dataset=tiny&s=0", 400, nil)

	// /metrics is expvar JSON including the cache and endpoint counters.
	var met map[string]json.RawMessage
	get(t, "/metrics", 200, &met)
	for _, key := range []string{"cache", "endpoints", "in_flight", "queue_depth", "admission", "uptime_seconds"} {
		if _, ok := met[key]; !ok {
			t.Fatalf("/metrics missing %q: %v", key, met)
		}
	}
	var cache map[string]int64
	if err := json.Unmarshal(met["cache"], &cache); err != nil {
		t.Fatalf("cache gauge: %v", err)
	}
	if cache["hits"] < 1 || cache["misses"] < 1 {
		t.Fatalf("cache gauge = %v, want hits and misses recorded", cache)
	}
}

func TestStatsAndToplexes(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx := context.Background()
	st, err := s.Stats(ctx, "tiny")
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	if st.Stats.NumEdges != 5 {
		t.Fatalf("stats = %+v, want 5 edges", st.Stats)
	}
	tp, err := s.Toplexes(ctx, "tiny")
	if err != nil {
		t.Fatalf("Toplexes: %v", err)
	}
	if tp.Count != len(tp.Toplexes) || tp.Count == 0 {
		t.Fatalf("toplexes = %+v", tp)
	}
}

// TestWarmStartBootEngineDetached pins the boot contract: loading runs on
// the boot-ctx-bound engine (so a signal aborts a long parallel parse), but
// the registered handles are rebound to the detached engine and keep
// serving after the boot context is cancelled.
func TestWarmStartBootEngineDetached(t *testing.T) {
	dir := t.TempDir()
	eng := nwhy.NewEngine(2)
	seed := nwhy.FromSets(twoIslands(), 8)
	if err := seed.SaveSnapshot(filepath.Join(dir, "islands.nwhyb")); err != nil {
		t.Fatalf("SaveSnapshot: %v", err)
	}
	boot, cancel := context.WithCancel(context.Background())
	reg := NewRegistry()
	if _, err := reg.WarmStart(boot, eng.WithContext(boot), dir); err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	cancel()
	g, err := reg.Get("islands")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if err := g.Engine().Err(); err != nil {
		t.Fatalf("warm-started handle retained the boot deadline: %v", err)
	}
	if lg := g.SLineGraph(1, true); lg == nil || lg.NumVertices() == 0 {
		t.Fatal("query on warm-started handle failed after boot ctx cancel")
	}
}

func TestSComponentsShardedMatchesDirect(t *testing.T) {
	s, _ := testServer(t, Config{PartitionHints: map[string]int{"tiny": 2}})
	ctx := context.Background()

	direct, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, Direct: true, WithLabels: true})
	if err != nil {
		t.Fatalf("direct: %v", err)
	}
	// Explicit parts.
	sharded, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, Sharded: true, Parts: 2, WithLabels: true})
	if err != nil {
		t.Fatalf("sharded: %v", err)
	}
	if !sharded.Sharded || sharded.Parts != 2 {
		t.Fatalf("sharded echo = (%v, %d), want (true, 2)", sharded.Sharded, sharded.Parts)
	}
	if sharded.NumComponents != direct.NumComponents || sharded.LargestSize != direct.LargestSize {
		t.Fatalf("sharded summary (%d, %d) != direct (%d, %d)",
			sharded.NumComponents, sharded.LargestSize, direct.NumComponents, direct.LargestSize)
	}
	for i := range direct.Labels {
		if sharded.Labels[i] != direct.Labels[i] {
			t.Fatalf("label[%d] = %d (sharded) vs %d (direct)", i, sharded.Labels[i], direct.Labels[i])
		}
	}
	// Parts omitted: the configured hint applies.
	hinted, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, Sharded: true, WithLabels: true})
	if err != nil {
		t.Fatalf("hinted: %v", err)
	}
	if hinted.Parts != 2 {
		t.Fatalf("hinted parts = %d, want 2 from PartitionHints", hinted.Parts)
	}
	for i := range direct.Labels {
		if hinted.Labels[i] != direct.Labels[i] {
			t.Fatalf("hinted label[%d] = %d, want %d", i, hinted.Labels[i], direct.Labels[i])
		}
	}
	// Validation: sharded is exclusive with direct/incremental, parts needs sharded.
	if _, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, Sharded: true, Direct: true}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("sharded+direct err = %v, want ErrBadRequest", err)
	}
	if _, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, Parts: 2}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("parts without sharded err = %v, want ErrBadRequest", err)
	}
	if _, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, Sharded: true, Parts: -1}); !errors.Is(err, ErrBadRequest) {
		t.Fatalf("negative parts err = %v, want ErrBadRequest", err)
	}
}
