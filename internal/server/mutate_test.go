package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"

	"nwhy"
)

func TestMutateCommitsImmediatelyByDefault(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx := context.Background()

	out, err := s.Mutate(ctx, MutateRequest{
		Dataset: "tiny",
		Ops:     []EdgeOp{{Op: "add", Members: []uint32{4, 5}}},
	})
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if !out.Committed || out.Pending != 0 || out.Epoch != 1 {
		t.Fatalf("result = %+v, want committed at epoch 1 with nothing pending", out)
	}
	if len(out.Added) != 1 || out.Added[0] != 5 {
		t.Fatalf("added = %v, want fresh ID 5", out.Added)
	}
	g, err := s.Registry().Get("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 6 {
		t.Fatalf("NumEdges = %d after commit, want 6", g.NumEdges())
	}
	// The new edge {4,5} bridges the two 1-connected islands.
	scc, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, Direct: true})
	if err != nil {
		t.Fatalf("SComponents: %v", err)
	}
	if scc.NumComponents != 1 {
		t.Fatalf("components after bridge = %d, want 1", scc.NumComponents)
	}
}

func TestMutateCompactionPolicyBatches(t *testing.T) {
	s, _ := testServer(t, Config{CompactEvery: 5})
	ctx := context.Background()

	out, err := s.Mutate(ctx, MutateRequest{
		Dataset: "tiny",
		Ops: []EdgeOp{
			{Op: "add", Members: []uint32{0, 7}},
			{Op: "remove", ID: 2},
		},
	})
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if out.Committed || out.Pending != 2 || out.Epoch != 0 {
		t.Fatalf("result = %+v, want 2 staged ops and no commit", out)
	}
	if out.Removed != 1 {
		t.Fatalf("removed = %d, want 1", out.Removed)
	}
	// Staged ops are invisible to queries until compaction.
	g, err := s.Registry().Get("tiny")
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 5 || g.Epoch() != 0 {
		t.Fatalf("queries see %d edges at epoch %d, want the old snapshot (5, 0)", g.NumEdges(), g.Epoch())
	}
	if got := s.PendingOps("tiny"); got != 2 {
		t.Fatalf("PendingOps = %d, want 2", got)
	}

	cr, err := s.Compact(ctx, "tiny")
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if !cr.Committed || cr.Flushed != 2 || cr.Epoch != 1 {
		t.Fatalf("compact = %+v, want 2 ops flushed into epoch 1", cr)
	}
	if g.NumEdges() != 6 || len(g.Incidence(2)) != 0 {
		t.Fatalf("post-compact: %d edges, edge 2 = %v, want 6 with edge 2 removed", g.NumEdges(), g.Incidence(2))
	}
	// Nothing left to flush: compaction is a no-op.
	cr, err = s.Compact(ctx, "tiny")
	if err != nil {
		t.Fatalf("Compact (idle): %v", err)
	}
	if cr.Committed || cr.Epoch != 1 {
		t.Fatalf("idle compact = %+v, want no-op at epoch 1", cr)
	}

	// The fifth staged op reaches CompactEvery and commits on its own.
	for i := 0; i < 5; i++ {
		out, err = s.Mutate(ctx, MutateRequest{Dataset: "tiny", Ops: []EdgeOp{{Op: "add", Members: []uint32{uint32(i), 7}}}})
		if err != nil {
			t.Fatalf("Mutate %d: %v", i, err)
		}
	}
	if !out.Committed || out.Epoch != 2 || s.PendingOps("tiny") != 0 {
		t.Fatalf("result = %+v (pending %d), want the 5th op to trigger the commit", out, s.PendingOps("tiny"))
	}
}

func TestMutateBadOpDiscardsPending(t *testing.T) {
	s, _ := testServer(t, Config{CompactEvery: 10})
	ctx := context.Background()

	if _, err := s.Mutate(ctx, MutateRequest{Dataset: "tiny", Ops: []EdgeOp{{Op: "add", Members: []uint32{0, 1}}}}); err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	// Removing a dead edge poisons (and discards) the whole staged batch.
	if _, err := s.Mutate(ctx, MutateRequest{Dataset: "tiny", Ops: []EdgeOp{{Op: "remove", ID: 99}}}); err == nil {
		t.Fatal("out-of-range remove should fail")
	}
	if got := s.PendingOps("tiny"); got != 0 {
		t.Fatalf("PendingOps = %d after failed op, want discarded batch", got)
	}
	if _, err := s.Mutate(ctx, MutateRequest{Dataset: "tiny", Ops: []EdgeOp{{Op: "grow"}}}); err == nil {
		t.Fatal("unknown op should fail")
	}
	cr, err := s.Compact(ctx, "tiny")
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if cr.Committed || cr.Epoch != 0 {
		t.Fatalf("compact = %+v, want nothing to flush and epoch 0", cr)
	}
}

// TestSLineCacheEpochKeyedInvalidation pins the tentpole's serving behavior:
// a commit bumps the epoch in the cache key, so the next identical request
// misses, is served by patching the previous epoch's pairs, and the patched
// pairs match a from-scratch construction on the mutated dataset.
func TestSLineCacheEpochKeyedInvalidation(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx := context.Background()
	req := SLineRequest{Dataset: "tiny", S: 1, Edges: true}

	first, err := s.SLine(ctx, req)
	if err != nil {
		t.Fatalf("SLine: %v", err)
	}
	if first.CacheHit || first.NumEdges != 3 {
		t.Fatalf("first = %+v, want cold construction with 3 line-graph edges", first)
	}

	if _, err := s.Mutate(ctx, MutateRequest{Dataset: "tiny", Ops: []EdgeOp{{Op: "add", Members: []uint32{4, 5}}}}); err != nil {
		t.Fatalf("Mutate: %v", err)
	}

	second, err := s.SLine(ctx, req)
	if err != nil {
		t.Fatalf("SLine after commit: %v", err)
	}
	if second.CacheHit {
		t.Fatal("request after a commit must miss the epoch-keyed cache")
	}
	if second.NumVertices != 6 || second.NumEdges != 5 {
		t.Fatalf("post-mutation shape = (%d,%d), want (6,5)", second.NumVertices, second.NumEdges)
	}

	// The patched pairs must equal a from-scratch construction on the same
	// live sets.
	lg, _, _, err := s.slineGraph(ctx, req)
	if err != nil {
		t.Fatalf("slineGraph: %v", err)
	}
	sets := append(twoIslands(), []uint32{4, 5})
	want := nwhy.FromSets(sets, 8).SLineGraph(1, true)
	gp, wp := lg.Pairs(), want.Pairs()
	if len(gp) != len(wp) {
		t.Fatalf("pairs: %d vs rebuild %d", len(gp), len(wp))
	}
	for i := range gp {
		if gp[i] != wp[i] {
			t.Fatalf("pair %d: %v vs rebuild %v", i, gp[i], wp[i])
		}
	}

	third, err := s.SLine(ctx, req)
	if err != nil {
		t.Fatalf("SLine (repeat): %v", err)
	}
	if !third.CacheHit {
		t.Fatal("repeated post-mutation request must hit the new-epoch entry")
	}
}

func TestSCCIncrementalEndpoint(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx := context.Background()
	req := SCCRequest{Dataset: "tiny", S: 1, Incremental: true, WithLabels: true}

	first, err := s.SComponents(ctx, req)
	if err != nil {
		t.Fatalf("SComponents: %v", err)
	}
	if first.Incremental || first.NumComponents != 2 {
		t.Fatalf("first = %+v, want a full compute finding 2 components", first)
	}
	second, err := s.SComponents(ctx, req)
	if err != nil {
		t.Fatalf("SComponents (repeat): %v", err)
	}
	if !second.Incremental {
		t.Fatal("repeat at the same epoch must serve the cached forest")
	}

	// An insert-only commit is absorbed without a recompute, and the labels
	// match a direct recompute exactly.
	if _, err := s.Mutate(ctx, MutateRequest{Dataset: "tiny", Ops: []EdgeOp{{Op: "add", Members: []uint32{4, 5}}}}); err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	third, err := s.SComponents(ctx, req)
	if err != nil {
		t.Fatalf("SComponents after insert: %v", err)
	}
	if !third.Incremental || third.NumComponents != 1 {
		t.Fatalf("post-insert = %+v, want incremental absorption into 1 component", third)
	}
	direct, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, Direct: true, WithLabels: true})
	if err != nil {
		t.Fatalf("SComponents direct: %v", err)
	}
	for i := range third.Labels {
		if third.Labels[i] != direct.Labels[i] {
			t.Fatalf("label %d: incremental %d vs direct %d", i, third.Labels[i], direct.Labels[i])
		}
	}

	if _, err := s.SComponents(ctx, SCCRequest{Dataset: "tiny", S: 1, Direct: true, Incremental: true}); err == nil {
		t.Fatal("direct+incremental must be rejected")
	}
}

func TestSCCIncrementalSurvivesRegistrySwap(t *testing.T) {
	s, _ := testServer(t, Config{})
	ctx := context.Background()
	req := SCCRequest{Dataset: "tiny", S: 1, Incremental: true}
	if _, err := s.SComponents(ctx, req); err != nil {
		t.Fatalf("SComponents: %v", err)
	}
	// Replace the dataset under the same name: the held view must rebuild
	// against the new handle, not serve the old dataset's components.
	s.Registry().Add("tiny", nwhy.FromSets([][]uint32{{0, 1}, {1, 2}, {3}}, 4).WithEngine(s.Engine()), "")
	out, err := s.SComponents(ctx, req)
	if err != nil {
		t.Fatalf("SComponents after swap: %v", err)
	}
	if out.Incremental || out.NumComponents != 2 {
		t.Fatalf("post-swap = %+v, want full recompute finding 2 components", out)
	}
}

func TestMetricsSeparateQueueWait(t *testing.T) {
	m := newMetrics()
	m.observe("x", 4*time.Millisecond, 10*time.Millisecond, nil)
	m.observeRejected("x", 2*time.Millisecond)
	snaps := m.snapshot()
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %+v", snaps)
	}
	snap := snaps[0]
	if snap.Count != 1 || snap.Rejected != 1 {
		t.Fatalf("snapshot = %+v", snap)
	}
	// Handler latency covers only the admitted run...
	if snap.MeanMs != 10 || snap.MaxMs != 10 {
		t.Fatalf("handler latency = mean %v / max %v, want 10/10", snap.MeanMs, snap.MaxMs)
	}
	// ...while queue wait averages over both arrivals: (4ms+2ms)/2.
	if snap.MeanQueueMs != 3 || snap.MaxQueueMs != 4 {
		t.Fatalf("queue latency = mean %v / max %v, want 3/4", snap.MeanQueueMs, snap.MaxQueueMs)
	}
}

func TestHTTPMutateCompactAndGauges(t *testing.T) {
	s, _ := testServer(t, Config{CompactEvery: 10})
	srv := httptest.NewServer(s.Handler())
	defer srv.Close()

	post := func(t *testing.T, path string, body any, wantStatus int, into any) {
		t.Helper()
		var buf bytes.Buffer
		if body != nil {
			if err := json.NewEncoder(&buf).Encode(body); err != nil {
				t.Fatal(err)
			}
		}
		resp, err := srv.Client().Post(srv.URL+path, "application/json", &buf)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("POST %s status = %d, want %d", path, resp.StatusCode, wantStatus)
		}
		if into != nil {
			if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
				t.Fatalf("POST %s decode: %v", path, err)
			}
		}
	}

	var mr MutateResult
	post(t, "/mutate", mutateBody{
		Dataset: "tiny",
		Ops:     []EdgeOp{{Op: "add", Members: []uint32{4, 5}}},
	}, 200, &mr)
	if mr.Committed || mr.Pending != 1 {
		t.Fatalf("mutate = %+v, want 1 op staged under the batching policy", mr)
	}
	var cr CompactResult
	post(t, "/compact?dataset=tiny", nil, 200, &cr)
	if !cr.Committed || cr.Epoch != 1 {
		t.Fatalf("compact = %+v, want commit into epoch 1", cr)
	}

	// Forced commit via the wire flag.
	post(t, "/mutate", mutateBody{
		Dataset: "tiny",
		Ops:     []EdgeOp{{Op: "remove", ID: 5}},
		Commit:  true,
	}, 200, &mr)
	if !mr.Committed || mr.Epoch != 2 {
		t.Fatalf("forced mutate = %+v, want commit into epoch 2", mr)
	}

	// Error mapping.
	post(t, "/mutate", mutateBody{Dataset: "nope", Ops: []EdgeOp{{Op: "add", Members: []uint32{0}}}}, 404, nil)
	post(t, "/mutate", mutateBody{Dataset: "tiny", Ops: []EdgeOp{{Op: "bogus"}}}, 400, nil)
	post(t, "/compact?dataset=nope", nil, 404, nil)

	// The incremental SCC view over the wire.
	resp, err := srv.Client().Get(srv.URL + "/scc?dataset=tiny&s=1&incremental=true")
	if err != nil {
		t.Fatal(err)
	}
	var scc SCCResult
	if err := json.NewDecoder(resp.Body).Decode(&scc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if scc.NumComponents < 1 {
		t.Fatalf("scc = %+v", scc)
	}

	// /metrics gains the per-dataset epoch gauge, cache evictions, and the
	// queue-wait columns.
	resp, err = srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var met map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&met); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	var ds map[string]struct {
		Epoch      uint64 `json:"epoch"`
		PendingOps int    `json:"pending_ops"`
	}
	if err := json.Unmarshal(met["datasets"], &ds); err != nil {
		t.Fatalf("datasets gauge: %v", err)
	}
	if ds["tiny"].Epoch != 2 || ds["tiny"].PendingOps != 0 {
		t.Fatalf("datasets gauge = %+v, want tiny at epoch 2 with no pending ops", ds)
	}
	var cache map[string]int64
	if err := json.Unmarshal(met["cache"], &cache); err != nil {
		t.Fatalf("cache gauge: %v", err)
	}
	if _, ok := cache["evictions"]; !ok {
		t.Fatalf("cache gauge = %v, want an evictions counter", cache)
	}
	var eps []EndpointSnapshot
	if err := json.Unmarshal(met["endpoints"], &eps); err != nil {
		t.Fatalf("endpoints gauge: %v", err)
	}
	// All four mutate requests were admitted (two succeeded, two errored
	// past admission), so the endpoint row counts every one.
	found := false
	for _, ep := range eps {
		if ep.Endpoint == "mutate" && ep.Count == 4 && ep.Errors == 2 {
			found = true
		}
	}
	if !found {
		t.Fatalf("endpoints gauge = %+v, want a mutate row with 4 admitted / 2 errored", eps)
	}
}
