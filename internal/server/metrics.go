package server

import (
	"sort"
	"sync"
	"time"
)

// endpointStats accumulates latency counters for one query endpoint. Handler
// time (TotalNs/MaxNs, admitted requests only) and admission queue wait
// (QueueTotalNs/QueueMaxNs, every arrival including rejected ones) are kept
// separate: under load the queue wait is where latency hides, and folding it
// into handler time would misattribute admission pressure to the kernels.
type endpointStats struct {
	Count        int64 `json:"count"`
	Errors       int64 `json:"errors"`
	Rejected     int64 `json:"rejected"`
	TotalNs      int64 `json:"total_ns"`
	MaxNs        int64 `json:"max_ns"`
	QueueTotalNs int64 `json:"queue_total_ns"`
	QueueMaxNs   int64 `json:"queue_max_ns"`
}

// EndpointSnapshot is one endpoint's counters plus derived mean latencies,
// as exported on /metrics. MeanMs/MaxMs cover handler execution only;
// MeanQueueMs/MaxQueueMs cover the admission wait, averaged over every
// arrival (admitted or rejected).
type EndpointSnapshot struct {
	Endpoint    string  `json:"endpoint"`
	Count       int64   `json:"count"`
	Errors      int64   `json:"errors"`
	Rejected    int64   `json:"rejected"`
	MeanMs      float64 `json:"mean_ms"`
	MaxMs       float64 `json:"max_ms"`
	MeanQueueMs float64 `json:"mean_queue_ms"`
	MaxQueueMs  float64 `json:"max_queue_ms"`
}

// metrics is the per-server (not process-global) metric registry. Holding
// the counters on the Server rather than in expvar's global map keeps tests
// free to build many servers without duplicate-publish panics.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

func newMetrics() *metrics {
	return &metrics{endpoints: map[string]*endpointStats{}}
}

func (m *metrics) get(endpoint string) *endpointStats {
	s, ok := m.endpoints[endpoint]
	if !ok {
		s = &endpointStats{}
		m.endpoints[endpoint] = s
	}
	return s
}

// observe records one admitted request: how long it queued for a slot, how
// long the handler ran, and the outcome.
func (m *metrics) observe(endpoint string, queued, ran time.Duration, err error) {
	ns, qns := ran.Nanoseconds(), queued.Nanoseconds()
	m.mu.Lock()
	s := m.get(endpoint)
	s.Count++
	if err != nil {
		s.Errors++
	}
	s.TotalNs += ns
	if ns > s.MaxNs {
		s.MaxNs = ns
	}
	s.QueueTotalNs += qns
	if qns > s.QueueMaxNs {
		s.QueueMaxNs = qns
	}
	m.mu.Unlock()
}

// observeRejected records a request that never got past admission, including
// the time it spent queued before being turned away.
func (m *metrics) observeRejected(endpoint string, queued time.Duration) {
	qns := queued.Nanoseconds()
	m.mu.Lock()
	s := m.get(endpoint)
	s.Rejected++
	s.QueueTotalNs += qns
	if qns > s.QueueMaxNs {
		s.QueueMaxNs = qns
	}
	m.mu.Unlock()
}

// snapshot returns per-endpoint counters sorted by endpoint name.
func (m *metrics) snapshot() []EndpointSnapshot {
	m.mu.Lock()
	out := make([]EndpointSnapshot, 0, len(m.endpoints))
	for name, s := range m.endpoints {
		snap := EndpointSnapshot{
			Endpoint:   name,
			Count:      s.Count,
			Errors:     s.Errors,
			Rejected:   s.Rejected,
			MaxMs:      float64(s.MaxNs) / 1e6,
			MaxQueueMs: float64(s.QueueMaxNs) / 1e6,
		}
		if s.Count > 0 {
			snap.MeanMs = float64(s.TotalNs) / float64(s.Count) / 1e6
		}
		if arrivals := s.Count + s.Rejected; arrivals > 0 {
			snap.MeanQueueMs = float64(s.QueueTotalNs) / float64(arrivals) / 1e6
		}
		out = append(out, snap)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// Metrics returns the per-endpoint latency snapshot (exported for the bench
// harness and tests; the HTTP layer serves the same data on /metrics).
func (s *Server) Metrics() []EndpointSnapshot { return s.met.snapshot() }
