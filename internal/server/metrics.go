package server

import (
	"sort"
	"sync"
	"time"
)

// endpointStats accumulates latency counters for one query endpoint.
type endpointStats struct {
	Count    int64 `json:"count"`
	Errors   int64 `json:"errors"`
	Rejected int64 `json:"rejected"`
	TotalNs  int64 `json:"total_ns"`
	MaxNs    int64 `json:"max_ns"`
}

// EndpointSnapshot is one endpoint's counters plus derived mean latency, as
// exported on /metrics.
type EndpointSnapshot struct {
	Endpoint string  `json:"endpoint"`
	Count    int64   `json:"count"`
	Errors   int64   `json:"errors"`
	Rejected int64   `json:"rejected"`
	MeanMs   float64 `json:"mean_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// metrics is the per-server (not process-global) metric registry. Holding
// the counters on the Server rather than in expvar's global map keeps tests
// free to build many servers without duplicate-publish panics.
type metrics struct {
	mu        sync.Mutex
	endpoints map[string]*endpointStats
}

func newMetrics() *metrics {
	return &metrics{endpoints: map[string]*endpointStats{}}
}

func (m *metrics) get(endpoint string) *endpointStats {
	s, ok := m.endpoints[endpoint]
	if !ok {
		s = &endpointStats{}
		m.endpoints[endpoint] = s
	}
	return s
}

// observe records one admitted request's latency and outcome.
func (m *metrics) observe(endpoint string, d time.Duration, err error) {
	ns := d.Nanoseconds()
	m.mu.Lock()
	s := m.get(endpoint)
	s.Count++
	if err != nil {
		s.Errors++
	}
	s.TotalNs += ns
	if ns > s.MaxNs {
		s.MaxNs = ns
	}
	m.mu.Unlock()
}

// observeRejected records a request that never got past admission.
func (m *metrics) observeRejected(endpoint string) {
	m.mu.Lock()
	m.get(endpoint).Rejected++
	m.mu.Unlock()
}

// snapshot returns per-endpoint counters sorted by endpoint name.
func (m *metrics) snapshot() []EndpointSnapshot {
	m.mu.Lock()
	out := make([]EndpointSnapshot, 0, len(m.endpoints))
	for name, s := range m.endpoints {
		snap := EndpointSnapshot{
			Endpoint: name,
			Count:    s.Count,
			Errors:   s.Errors,
			Rejected: s.Rejected,
			MaxMs:    float64(s.MaxNs) / 1e6,
		}
		if s.Count > 0 {
			snap.MeanMs = float64(s.TotalNs) / float64(s.Count) / 1e6
		}
		out = append(out, snap)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Endpoint < out[j].Endpoint })
	return out
}

// Metrics returns the per-endpoint latency snapshot (exported for the bench
// harness and tests; the HTTP layer serves the same data on /metrics).
func (s *Server) Metrics() []EndpointSnapshot { return s.met.snapshot() }
