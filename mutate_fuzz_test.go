package nwhy

import (
	"context"
	"testing"
)

// FuzzMutateCompact drives a random mutation script — decoded from the fuzz
// bytes as (op, arg) pairs, committed in small batches — through the
// overlay/compaction path, maintaining an IncrementalSCC view across the
// commits. After every commit the mutated handle is checked differentially
// against a hypergraph rebuilt from scratch from the same live edge sets:
// structural validity, bit-identical incidence, identical s-CC labels (the
// incremental view and a direct recompute), and identical s-line pairs.
func FuzzMutateCompact(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06})
	f.Add([]byte{0x00, 0x00, 0x07, 0x01, 0x00, 0x02, 0x09, 0x05})
	f.Add([]byte{0xff, 0x3c, 0x80, 0x11, 0x05, 0x00, 0x21, 0x42, 0x00, 0x01})
	f.Fuzz(func(t *testing.T, data []byte) {
		ctx := context.Background()
		g := FromSets([][]uint32{
			{0, 1, 2},
			{1, 2, 3},
			{4, 5},
			{5, 6},
		}, 8)
		scc := g.IncrementalSCC(2)
		if _, _, err := scc.Labels(ctx); err != nil {
			t.Fatal(err)
		}
		const maxOps = 40
		ops := 0
		m, err := g.BeginMutation()
		if err != nil {
			t.Fatal(err)
		}
		staged := 0
		commit := func() {
			if err := m.CommitCtx(ctx); err != nil {
				t.Fatalf("commit: %v", err)
			}
			// Differential: rebuild from scratch from the live sets.
			sets := make([][]uint32, g.NumEdges())
			for e := range sets {
				sets[e] = append([]uint32(nil), g.Incidence(e)...)
			}
			want := FromSets(sets, g.NumNodes())
			if err := g.Validate(); err != nil {
				t.Fatalf("mutated handle invalid: %v", err)
			}
			if !g.Hypergraph().Edges.Equal(want.Hypergraph().Edges) ||
				!g.Hypergraph().Nodes.Equal(want.Hypergraph().Nodes) {
				t.Fatal("compacted incidence differs from rebuild")
			}
			incLabels, _, err := scc.Labels(ctx)
			if err != nil {
				t.Fatal(err)
			}
			wantLabels := want.SConnectedComponentsDirect(2)
			for i := range incLabels {
				if incLabels[i] != wantLabels[i] {
					t.Fatalf("incremental s-CC label %d: %d vs rebuild %d", i, incLabels[i], wantLabels[i])
				}
			}
			gp := g.SLineGraph(2, true).Pairs()
			wp := want.SLineGraph(2, true).Pairs()
			if len(gp) != len(wp) {
				t.Fatalf("s-line pairs: %d vs rebuild %d", len(gp), len(wp))
			}
			for i := range gp {
				if gp[i] != wp[i] {
					t.Fatalf("s-line pair %d: %v vs rebuild %v", i, gp[i], wp[i])
				}
			}
			m, err = g.BeginMutation()
			if err != nil {
				t.Fatal(err)
			}
			staged = 0
		}
		for i := 0; i+1 < len(data) && ops < maxOps; i += 2 {
			op, arg := data[i], data[i+1]
			ops++
			if op%5 == 0 && m.Edges() > 0 {
				// Remove: an already-dead target is an expected error (no-op).
				_ = m.RemoveEdge(uint32(arg) % uint32(m.Edges()))
			} else {
				deg := 1 + int(op%4)
				members := make([]uint32, deg)
				for j := range members {
					members[j] = uint32(int(arg)+j*(int(op)+1)) % uint32(g.NumNodes()+2)
				}
				if _, err := m.AddEdge(members); err != nil {
					t.Fatalf("add %v: %v", members, err)
				}
			}
			staged++
			if staged == 3 {
				commit()
			}
		}
		commit()
	})
}
