package nwhy

import (
	"os"
	"path/filepath"
	"testing"

	"nwhy/internal/gen"
	"nwhy/internal/parallel"
)

func sameHypergraph(t *testing.T, a, b *NWHypergraph) {
	t.Helper()
	if !a.hg().Edges.Equal(b.hg().Edges) || !a.hg().Nodes.Equal(b.hg().Nodes) {
		t.Fatal("hypergraphs differ")
	}
}

func writeSample(t *testing.T, dir string) (*NWHypergraph, string) {
	t.Helper()
	g := Wrap(gen.BipartitePowerLaw(120, 90, 800, 1.7, 11))
	path := filepath.Join(dir, "h.mtx")
	if err := g.Save(path); err != nil {
		t.Fatal(err)
	}
	return g, path
}

func TestLoadFileFormatsAgree(t *testing.T) {
	dir := t.TempDir()
	g, mtx := writeSample(t, dir)

	text, err := LoadFile(mtx, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameHypergraph(t, g, text)

	serial, err := LoadFile(mtx, LoadOptions{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	sameHypergraph(t, text, serial)

	snap := filepath.Join(dir, "h.nwhyb")
	if err := g.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	bin, err := LoadFile(snap, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameHypergraph(t, g, bin)

	// Load (the paper's graph_reader shim) auto-detects both encodings.
	viaLoad, err := Load(snap)
	if err != nil {
		t.Fatal(err)
	}
	sameHypergraph(t, g, viaLoad)
}

// Auto-detection must sniff the magic, not trust the extension: a snapshot
// under a neutral name still decodes as a snapshot, and forcing the wrong
// format must fail rather than misparse.
func TestLoadFileDetectionAndForcing(t *testing.T) {
	dir := t.TempDir()
	g, mtx := writeSample(t, dir)

	disguised := filepath.Join(dir, "h.bin")
	if err := g.SaveSnapshot(disguised); err != nil {
		t.Fatal(err)
	}
	bin, err := LoadFile(disguised, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sameHypergraph(t, g, bin)

	if _, err := LoadFile(mtx, LoadOptions{Format: FormatSnapshot}); err == nil {
		t.Fatal("text file decoded as snapshot")
	}
	if _, err := LoadFile(disguised, LoadOptions{Format: FormatMatrixMarket}); err == nil {
		t.Fatal("snapshot parsed as Matrix Market")
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.mtx"), LoadOptions{}); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadFileBindsEngine(t *testing.T) {
	dir := t.TempDir()
	_, mtx := writeSample(t, dir)
	eng := parallel.NewEngine(2)
	defer eng.Close()
	g, err := LoadFile(mtx, LoadOptions{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if g.Engine() != eng {
		t.Fatal("handle not bound to the loading engine")
	}
	unbound, err := LoadFile(mtx, LoadOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if unbound.Engine() != SharedEngine() {
		t.Fatal("default handle not bound to the shared engine")
	}

	// The snapshot fast path (both CSR and Bel framings land here via
	// SaveSnapshot) must bind identically — internal/server's warm start
	// relies on LoadFile(path, LoadOptions{Engine: eng}).Engine() == eng
	// with no WithEngine copy afterwards.
	g2, _ := writeSample(t, dir)
	snap := filepath.Join(dir, "h.nwhyb")
	if err := g2.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	fromSnap, err := LoadFile(snap, LoadOptions{Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	if fromSnap.Engine() != eng {
		t.Fatal("snapshot-loaded handle not bound to the loading engine")
	}
	sameHypergraph(t, g2, fromSnap)
}

// A snapshot written by SaveSnapshot must survive deliberate truncation
// with an error, not a bad hypergraph.
func TestLoadFileRejectsTruncatedSnapshot(t *testing.T) {
	dir := t.TempDir()
	g, _ := writeSample(t, dir)
	snap := filepath.Join(dir, "h.nwhyb")
	if err := g.SaveSnapshot(snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(snap, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(snap, LoadOptions{}); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
}
