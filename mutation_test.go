package nwhy

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

func mutBase() *NWHypergraph {
	return FromSets([][]uint32{
		{0, 1, 2},
		{1, 2, 3},
		{4, 5},
		{5, 6},
	}, 7)
}

func TestMutationCommitSwapsSnapshot(t *testing.T) {
	g := mutBase()
	if g.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d", g.Epoch())
	}
	before := g.Hypergraph()
	m, err := g.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	id, err := m.AddEdge([]uint32{2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if id != 4 {
		t.Fatalf("new edge ID = %d", id)
	}
	// Readers see the old snapshot until Commit.
	if g.NumEdges() != 4 {
		t.Fatalf("pre-commit NumEdges = %d", g.NumEdges())
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != 1 || g.NumEdges() != 5 {
		t.Fatalf("post-commit epoch=%d edges=%d", g.Epoch(), g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// The pre-commit hypergraph is untouched (readers holding it are safe).
	if before.NumEdges() != 4 {
		t.Fatalf("old snapshot mutated: %d edges", before.NumEdges())
	}
	// A spent mutation rejects further use.
	if _, err := m.AddEdge([]uint32{0}); err == nil {
		t.Fatal("spent mutation accepted AddEdge")
	}
	if err := m.Commit(); err == nil {
		t.Fatal("double commit succeeded")
	}
}

func TestMutationEmptyCommitIsNoOp(t *testing.T) {
	g := mutBase()
	m, err := g.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if g.Epoch() != 0 {
		t.Fatalf("empty commit bumped epoch to %d", g.Epoch())
	}
}

func TestMutationConflict(t *testing.T) {
	g := mutBase()
	m1, err := g.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	m2, err := g.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m1.AddEdge([]uint32{0, 6}); err != nil {
		t.Fatal(err)
	}
	if _, err := m2.AddEdge([]uint32{1, 6}); err != nil {
		t.Fatal(err)
	}
	if err := m1.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := m2.Commit(); !errors.Is(err, ErrMutationConflict) {
		t.Fatalf("want ErrMutationConflict, got %v", err)
	}
	if g.Epoch() != 1 || g.NumEdges() != 5 {
		t.Fatalf("loser leaked state: epoch=%d edges=%d", g.Epoch(), g.NumEdges())
	}
}

func TestMutationWeightedRejected(t *testing.T) {
	g, err := New([]uint32{0, 0, 1}, []uint32{0, 1, 1}, []float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.BeginMutation(); err == nil {
		t.Fatal("weighted hypergraph accepted a mutation")
	}
}

func TestMutateWrapperAndRemove(t *testing.T) {
	g := mutBase()
	err := g.Mutate(func(m *Mutation) error {
		if err := m.RemoveEdge(2); err != nil {
			return err
		}
		_, err := m.AddEdge([]uint32{0, 6})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Removed ID was recycled by the insert in the same batch.
	if g.NumEdges() != 4 {
		t.Fatalf("NumEdges = %d", g.NumEdges())
	}
	got := g.Incidence(2)
	if len(got) != 2 || got[0] != 0 || got[1] != 6 {
		t.Fatalf("edge 2 = %v", got)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestMutateThenCompactMatchesRebuild is the facade-level differential test:
// after an arbitrary mutation history, the handle must behave identically to
// one built from scratch from the same live sets — structure, stats, s-CC
// labels, and s-line pairs.
func TestMutateThenCompactMatchesRebuild(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		numNodes := 6 + rng.Intn(20)
		var sets [][]uint32
		for e := 0; e < 3+rng.Intn(10); e++ {
			d := 1 + rng.Intn(4)
			s := make([]uint32, d)
			for j := range s {
				s[j] = uint32(rng.Intn(numNodes))
			}
			sets = append(sets, s)
		}
		g := FromSets(sets, numNodes)
		live := map[uint32]bool{}
		for e := 0; e < g.NumEdges(); e++ {
			live[uint32(e)] = true
		}
		for batch := 0; batch < 4; batch++ {
			err := g.Mutate(func(m *Mutation) error {
				for op := 0; op < 6; op++ {
					if rng.Intn(4) == 0 && len(live) > 1 {
						var victim uint32
						n := rng.Intn(len(live))
						for e := range live {
							if n == 0 {
								victim = e
								break
							}
							n--
						}
						if err := m.RemoveEdge(victim); err != nil {
							return err
						}
						delete(live, victim)
					} else {
						d := 1 + rng.Intn(4)
						s := make([]uint32, d)
						for j := range s {
							s[j] = uint32(rng.Intn(numNodes))
						}
						id, err := m.AddEdge(s)
						if err != nil {
							return err
						}
						live[id] = true
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		rebuiltSets := make([][]uint32, g.NumEdges())
		for e := range rebuiltSets {
			rebuiltSets[e] = append([]uint32(nil), g.Incidence(e)...)
		}
		want := FromSets(rebuiltSets, g.NumNodes())
		if !g.Hypergraph().Edges.Equal(want.Hypergraph().Edges) {
			t.Fatalf("trial %d: incidence mismatch vs rebuild", trial)
		}
		for s := 1; s <= 2; s++ {
			gl := g.SConnectedComponentsDirect(s)
			wl := want.SConnectedComponentsDirect(s)
			for i := range gl {
				if gl[i] != wl[i] {
					t.Fatalf("trial %d s=%d: labels differ at %d", trial, s, i)
				}
			}
			gp := g.SLineGraph(s, true).Pairs()
			wp := want.SLineGraph(s, true).Pairs()
			if len(gp) != len(wp) {
				t.Fatalf("trial %d s=%d: %d pairs vs %d", trial, s, len(gp), len(wp))
			}
			for i := range gp {
				if gp[i] != wp[i] {
					t.Fatalf("trial %d s=%d: pair %d differs", trial, s, i)
				}
			}
		}
	}
}

func TestIncrementalSCCInsertOnly(t *testing.T) {
	ctx := context.Background()
	g := mutBase()
	scc := g.IncrementalSCC(2)
	labels, inc, err := scc.Labels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if inc {
		t.Fatal("first call cannot be incremental")
	}
	wantFirst := g.SConnectedComponentsDirect(2)
	for i := range labels {
		if labels[i] != wantFirst[i] {
			t.Fatalf("initial labels differ at %d", i)
		}
	}
	// Insert-only batch: bridge edges 0/1 and 2/3 at s=2.
	err = g.Mutate(func(m *Mutation) error {
		if _, err := m.AddEdge([]uint32{4, 5, 6}); err != nil {
			return err
		}
		_, err := m.AddEdge([]uint32{0, 1, 3})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	labels, inc, err = scc.Labels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !inc {
		t.Fatal("insert-only refresh was not incremental")
	}
	want := g.SConnectedComponentsDirect(2)
	if len(labels) != len(want) {
		t.Fatalf("label lengths: %d vs %d", len(labels), len(want))
	}
	for i := range labels {
		if labels[i] != want[i] {
			t.Fatalf("labels differ at %d: %d vs %d", i, labels[i], want[i])
		}
	}
	// Cached at current epoch: still incremental, same labels.
	again, inc, err := scc.Labels(ctx)
	if err != nil || !inc {
		t.Fatalf("cached call: inc=%v err=%v", inc, err)
	}
	for i := range again {
		if again[i] != want[i] {
			t.Fatalf("cached labels differ at %d", i)
		}
	}
	incs, fulls := scc.Counts()
	if fulls != 1 || incs != 2 {
		t.Fatalf("counts: incs=%d fulls=%d", incs, fulls)
	}
}

func TestIncrementalSCCDeleteForcesRecompute(t *testing.T) {
	ctx := context.Background()
	g := mutBase()
	scc := g.IncrementalSCC(1)
	if _, _, err := scc.Labels(ctx); err != nil {
		t.Fatal(err)
	}
	if err := g.Mutate(func(m *Mutation) error { return m.RemoveEdge(1) }); err != nil {
		t.Fatal(err)
	}
	labels, inc, err := scc.Labels(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if inc {
		t.Fatal("post-delete refresh must be a full recompute")
	}
	want := g.SConnectedComponentsDirect(1)
	for i := range labels {
		if labels[i] != want[i] {
			t.Fatalf("labels differ at %d", i)
		}
	}
}

func TestRefreshSLineGraph(t *testing.T) {
	ctx := context.Background()
	g := mutBase()
	lg := g.SLineGraph(2, true)
	got, how, err := g.RefreshSLineGraphCtx(ctx, lg, ConstructOptions{})
	if err != nil || how != RefreshCurrent || got != lg {
		t.Fatalf("current handle: how=%v err=%v same=%v", how, err, got == lg)
	}
	// Insert-only: patched, and identical to a fresh construction.
	err = g.Mutate(func(m *Mutation) error {
		_, err := m.AddEdge([]uint32{1, 2, 5})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	patched, how, err := g.RefreshSLineGraphCtx(ctx, lg, ConstructOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if how != RefreshPatched {
		t.Fatalf("insert-only refresh: how=%v", how)
	}
	fresh := g.SLineGraph(2, true)
	fp, pp := fresh.Pairs(), patched.Pairs()
	if len(fp) != len(pp) {
		t.Fatalf("patched %d pairs vs fresh %d", len(pp), len(fp))
	}
	for i := range fp {
		if fp[i] != pp[i] {
			t.Fatalf("pair %d: patched %v vs fresh %v", i, pp[i], fp[i])
		}
	}
	if patched.Epoch() != g.Epoch() {
		t.Fatalf("patched epoch %d vs handle %d", patched.Epoch(), g.Epoch())
	}
	// Deletion: rebuilt.
	if err := g.Mutate(func(m *Mutation) error { return m.RemoveEdge(0) }); err != nil {
		t.Fatal(err)
	}
	rebuilt, how, err := g.RefreshSLineGraphCtx(ctx, patched, ConstructOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if how != RefreshRebuilt {
		t.Fatalf("post-delete refresh: how=%v", how)
	}
	fresh = g.SLineGraph(2, true)
	fp, rp := fresh.Pairs(), rebuilt.Pairs()
	if len(fp) != len(rp) {
		t.Fatalf("rebuilt %d pairs vs fresh %d", len(rp), len(fp))
	}
	for i := range fp {
		if fp[i] != rp[i] {
			t.Fatalf("pair %d: rebuilt %v vs fresh %v", i, rp[i], fp[i])
		}
	}
}

func TestAdjoinInvalidatedByCommit(t *testing.T) {
	g := mutBase()
	a := g.Adjoin()
	if a != g.Adjoin() {
		t.Fatal("adjoin not cached within an epoch")
	}
	err := g.Mutate(func(m *Mutation) error {
		_, err := m.AddEdge([]uint32{0, 3})
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	b := g.Adjoin()
	if a == b {
		t.Fatal("stale adjoin served after commit")
	}
	if b.NumRealEdges != 5 {
		t.Fatalf("rebuilt adjoin has %d hyperedges", b.NumRealEdges)
	}
}
