package nwhy_test

import (
	"fmt"

	"nwhy"
)

// The running example of the paper's figures: four hyperedges over nine
// hypernodes, whose 1-line graph is the cycle e0-e1-e2-e3.
func paperExample() *nwhy.NWHypergraph {
	return nwhy.FromSets([][]uint32{
		{0, 1, 2},
		{2, 3, 4},
		{4, 5, 6},
		{0, 6, 7, 8},
	}, 9)
}

func ExampleNew() {
	// NWHypergraph(row, col, weight) of the Python API: parallel arrays of
	// hyperedge IDs and hypernode IDs.
	hg, _ := nwhy.New(
		[]uint32{0, 0, 0, 1, 1, 1},
		[]uint32{0, 1, 2, 0, 1, 2},
		nil,
	)
	fmt.Println(hg.NumEdges(), hg.NumNodes(), hg.NumIncidences())
	// Output: 2 3 6
}

func ExampleNWHypergraph_SLineGraph() {
	hg := paperExample()
	lg := hg.SLineGraph(1, true)
	fmt.Println("s-degree of e0:", lg.SDegree(0))
	fmt.Println("s-neighbors of e0:", lg.SNeighbors(0))
	fmt.Println("1-line edges:", lg.NumEdges())
	// Output:
	// s-degree of e0: 2
	// s-neighbors of e0: [1 3]
	// 1-line edges: 4
}

func ExampleSLineGraph_SDistance() {
	hg := paperExample()
	lg := hg.SLineGraph(1, true)
	// e0 and e2 share no hypernode, but a 1-walk of length 2 connects them.
	fmt.Println(lg.SDistance(0, 2))
	fmt.Println(lg.SPath(0, 2))
	// Output:
	// 2
	// [0 1 2]
}

func ExampleNWHypergraph_ConnectedComponents() {
	hg := nwhy.FromSets([][]uint32{{0, 1}, {1, 2}, {4, 5}}, 6)
	cc := hg.ConnectedComponents(nwhy.CCHyper)
	fmt.Println("components:", cc.NumComponents())
	fmt.Println("e0 and e1 together:", cc.EdgeComp[0] == cc.EdgeComp[1])
	fmt.Println("e0 and e2 together:", cc.EdgeComp[0] == cc.EdgeComp[2])
	// Output:
	// components: 3
	// e0 and e1 together: true
	// e0 and e2 together: false
}

func ExampleNWHypergraph_BFS() {
	hg := paperExample()
	r := hg.BFS(0, nwhy.BFSTopDown)
	// Bipartite hops: e0=0, its nodes=1, overlapping edges=2, ...
	fmt.Println(r.EdgeLevel)
	// Output: [0 2 4 2]
}

func ExampleNWHypergraph_Toplexes() {
	hg := nwhy.FromSets([][]uint32{
		{0, 1, 2}, // maximal
		{0, 1},    // contained in the first
		{3},       // maximal
	}, 4)
	fmt.Println(hg.Toplexes())
	// Output: [0 2]
}

func ExampleNWHypergraph_Adjoin() {
	hg := paperExample()
	a := hg.Adjoin()
	// One shared index set: hyperedges 0..3, hypernodes 4..12 (Figure 3).
	fmt.Println(a.NumVertices(), a.NumRealEdges, a.NumRealNodes)
	fmt.Println("shared ID of hypernode 0:", a.NodeID(0))
	// Output:
	// 13 4 9
	// shared ID of hypernode 0: 4
}

func ExampleNWHypergraph_SLineGraphWith() {
	hg := paperExample()
	// The paper's Algorithm 1 (queue-based hashmap) on the adjoin
	// representation — identical output to every other construction.
	lg := hg.SLineGraphWith(1, true, nwhy.ConstructOptions{
		Algorithm: nwhy.AlgoQueueHashmap,
		UseAdjoin: true,
	})
	fmt.Println(lg.NumEdges())
	// Output: 4
}

func ExampleNWHypergraph_SLineGraphWeighted() {
	hg := nwhy.FromSets([][]uint32{
		{0, 1, 2, 3},
		{1, 2, 3, 4},
	}, 5)
	wl := hg.SLineGraphWeighted(1)
	fmt.Println("overlap strength:", wl.Strength(0, 1))
	// Output: overlap strength: 3
}

func ExampleNWHypergraph_CollapseEdges() {
	hg := nwhy.FromSets([][]uint32{{0, 1}, {0, 1}, {2}}, 3)
	collapsed, classes := hg.CollapseEdges()
	fmt.Println("edges after collapse:", collapsed.NumEdges())
	fmt.Println("classes:", classes)
	// Output:
	// edges after collapse: 2
	// classes: [[0 1] [2]]
}

func ExampleNWHypergraph_SConnectedComponentsDirect() {
	hg := paperExample()
	// s-components without materializing the line graph.
	fmt.Println(hg.SConnectedComponentsDirect(1))
	fmt.Println(hg.SConnectedComponentsDirect(2))
	// Output:
	// [0 0 0 0]
	// [0 1 2 3]
}

func ExampleNWHypergraph_Stats() {
	st := paperExample().Stats()
	fmt.Printf("|V|=%d |E|=%d max|e|=%d\n", st.NumNodes, st.NumEdges, st.MaxEdgeDegree)
	// Output: |V|=9 |E|=4 max|e|=4
}
