module nwhy

go 1.23
