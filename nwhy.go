// Package nwhy is a Go reproduction of NWHypergraph (NWHy), the parallel
// framework for exact and approximate hypergraph analytics of Liu, Firoz,
// Gebremedhin and Lumsdaine (IPDPS 2022).
//
// The package exposes the same surface the paper's Python API (Listing 5)
// offers over the C++ backend:
//
//	hg, _ := nwhy.New(edgeIDs, nodeIDs, weights) // NWHypergraph(row, col, weight)
//	lg := hg.SLineGraph(2, true)                 // hg.s_linegraph(s=2, edges=True)
//	ok := lg.IsSConnected()                      // s2lg.is_s_connected()
//	cc := lg.SConnectedComponents()              // s2lg.s_connected_components()
//	d := lg.SDistance(0, 1)                      // s2lg.s_distance(src=0, dest=1)
//	bc := lg.SBetweennessCentrality(true)        // s2lg.s_betweenness_centrality()
//
// Underneath sit the four hypergraph representations of the paper —
// bipartite (two mutually indexed index sets), adjoin (one shared index
// set), clique expansion, and s-line graphs — with the exact algorithms
// (HyperBFS, HyperCC, AdjoinBFS, AdjoinCC, toplexes) and six s-line-graph
// construction algorithms, including the paper's two new queue-based ones.
package nwhy

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"nwhy/internal/core"
	"nwhy/internal/mmio"
	"nwhy/internal/parallel"
	"nwhy/internal/partition"
	"nwhy/internal/slinegraph"
	"nwhy/internal/sparse"
)

// Engine is the execution context hypergraph computations run on: a
// work-stealing worker pool, per-worker reusable scratch, and an optional
// context.Context observed at grain boundaries. See NewEngine, SharedEngine,
// and (*Engine).WithContext.
type Engine = parallel.Engine

// NewEngine creates an engine with an owned pool of workers threads
// (workers < 1 means GOMAXPROCS). Close it when done; two engines can run
// computations concurrently under independent thread budgets.
func NewEngine(workers int) *Engine { return parallel.NewEngine(workers) }

// SharedEngine returns the process-wide engine every handle binds by
// default. SetNumThreads resizes its pool.
func SharedEngine() *Engine { return parallel.SharedEngine() }

// NWHypergraph is the user-facing hypergraph handle (the Python API's
// NWHypergraph class). Every computation it exposes runs on the engine the
// handle is bound to (SharedEngine unless NewWithEngine/WithEngine said
// otherwise).
//
// A handle is safe for concurrent readers: every query method may be called
// from many goroutines at once (on the same handle or on WithEngine copies
// sharing the underlying hypergraph) and none mutates observable state.
// Mutation goes through BeginMutation/Commit, which swaps in a fresh frozen
// snapshot atomically: queries in flight keep the snapshot they started on,
// queries started after a Commit see the new one, and nothing blocks.
// The lazily built adjoin representation is synchronized, shared across all
// copies of the handle, and keyed to the snapshot epoch it was built from.
type NWHypergraph struct {
	// state holds the epoch-swapped current snapshot, shared across every
	// WithEngine copy of the handle (a box pointer, so the atomic is never
	// copied).
	state *stateBox
	eng   *Engine
	// lazy holds the synchronized lazily built derived state, shared across
	// every WithEngine copy of the handle.
	lazy *lazyState
}

// lazyState is the derived state a handle builds on first use. It is a
// shared pointer (like smetrics' pairsBox) so WithEngine's shallow copies
// all see one build and never race on it.
type lazyState struct {
	mu sync.Mutex
	// adjoin caches the adjoin graph of the snapshot at adjoinEpoch; a
	// Commit moves the epoch and invalidates it implicitly.
	adjoin      *core.AdjoinGraph
	adjoinEpoch uint64
	// part caches the k-way partition of the snapshot at partEpoch, keyed by
	// the resolved options; shards caches the shard map derived from it.
	// Both follow the adjoin discipline: epoch-keyed, built under mu, never
	// cached from a cancelled engine.
	part        *partition.Result
	partEpoch   uint64
	partOpts    partition.Options
	shards      *partition.ShardMap
	shardsEpoch uint64
	// dstats caches the hyperedge degree statistics of the snapshot at
	// dstatsEpoch — the numbers resolveAxes and the degree prefilter consume
	// on every construction, memoized so repeated queries skip the scan.
	dstats      *slinegraph.DegreeStats
	dstatsEpoch uint64
	// tops/cover cache Algorithm 3's output (toplex IDs plus the containment
	// map) of the snapshot at topsEpoch, shared by Toplexes, Toplexify, and
	// the toplex-only s-component path. topsValid distinguishes a cached
	// empty result from a cold cache.
	tops      []uint32
	cover     []uint32
	topsEpoch uint64
	topsValid bool
}

// newHandle builds a facade handle around h bound to eng (nil = shared
// engine at call time). Every constructor funnels through it so the state
// and lazy boxes exist before any copy of the handle escapes.
func newHandle(h *core.Hypergraph, eng *Engine) *NWHypergraph {
	return &NWHypergraph{state: newStateBox(h), eng: eng, lazy: &lazyState{}}
}

// hg returns the current frozen hypergraph.
func (g *NWHypergraph) hg() *core.Hypergraph { return g.snap().h }

// Epoch reports the handle's mutation epoch: 0 at construction, +1 per
// committed mutation batch. Cache keys derived from a handle should include
// it so entries from before a mutation cannot serve after it.
func (g *NWHypergraph) Epoch() uint64 { return g.snap().epoch }

// engine resolves the handle's bound engine, defaulting to the shared one
// so zero-value and Wrap-built handles keep working.
func (g *NWHypergraph) engine() *Engine {
	if g.eng != nil {
		return g.eng
	}
	return parallel.SharedEngine()
}

// Engine returns the engine the handle's computations run on.
func (g *NWHypergraph) Engine() *Engine { return g.engine() }

// WithEngine returns a shallow copy of the handle bound to eng: its
// computations schedule on eng's pool and observe eng's context. The
// underlying hypergraph (and cached adjoin graph) is shared, so deriving
// per-call handles is cheap.
func (g *NWHypergraph) WithEngine(eng *Engine) *NWHypergraph {
	c := *g
	c.eng = eng
	return &c
}

// New builds a hypergraph from parallel incidence arrays: incidence k says
// hyperedge edgeIDs[k] contains hypernode nodeIDs[k] (optionally with
// weights[k]). It mirrors nwhy.NWHypergraph(row, col, weight) and binds the
// shared engine.
func New(edgeIDs, nodeIDs []uint32, weights []float64) (*NWHypergraph, error) {
	return NewWithEngine(parallel.SharedEngine(), edgeIDs, nodeIDs, weights)
}

// NewWithEngine is New binding an explicit engine: every computation on the
// returned handle schedules on eng.
func NewWithEngine(eng *Engine, edgeIDs, nodeIDs []uint32, weights []float64) (*NWHypergraph, error) {
	if len(edgeIDs) != len(nodeIDs) {
		return nil, fmt.Errorf("nwhy: %d edge IDs vs %d node IDs", len(edgeIDs), len(nodeIDs))
	}
	if weights != nil && len(weights) != len(edgeIDs) {
		return nil, fmt.Errorf("nwhy: %d weights for %d incidences", len(weights), len(edgeIDs))
	}
	bel := sparse.NewBiEdgeList(0, 0)
	bel.Edges = make([]sparse.Edge, 0, len(edgeIDs))
	if weights != nil {
		bel.Weights = make([]float64, 0, len(edgeIDs))
	}
	for k := range edgeIDs {
		if weights != nil {
			bel.AddWeighted(edgeIDs[k], nodeIDs[k], weights[k])
		} else {
			bel.Add(edgeIDs[k], nodeIDs[k])
		}
	}
	bel.Dedup()
	return newHandle(core.FromBiEdgeList(bel), eng), nil
}

// FromSets builds a hypergraph from explicit hyperedge member sets.
// numNodes < 0 infers the node count.
func FromSets(sets [][]uint32, numNodes int) *NWHypergraph {
	return newHandle(core.FromSets(sets, numNodes), nil)
}

// Format selects the on-disk encoding LoadFile reads.
type Format int

const (
	// FormatAuto detects the encoding: a .nwhyb extension or the snapshot
	// magic bytes select the binary snapshot, anything else parses as
	// Matrix Market text.
	FormatAuto Format = iota
	// FormatMatrixMarket forces the Matrix Market text parser.
	FormatMatrixMarket
	// FormatSnapshot forces the .nwhyb binary snapshot decoder.
	FormatSnapshot
)

// LoadOptions configure LoadFile.
type LoadOptions struct {
	// Engine runs the parse and is bound directly to the returned handle:
	// LoadFile(path, LoadOptions{Engine: eng}).Engine() == eng, with no
	// WithEngine copy needed afterwards — the hook warm-start loaders (e.g.
	// internal/server's registry) use to bind many datasets to one shared
	// serving engine. nil means SharedEngine.
	Engine *Engine
	// Format selects the decoder; FormatAuto sniffs it from the path.
	Format Format
	// Serial forces the single-threaded text parser instead of the
	// chunked parallel one. Only meaningful for Matrix Market input.
	Serial bool
}

// Load reads a hypergraph from a Matrix Market incidence file or a .nwhyb
// snapshot (the paper's graph_reader, with format auto-detection).
func Load(path string) (*NWHypergraph, error) {
	return LoadFile(path, LoadOptions{})
}

// LoadFile reads a hypergraph from path under opts. Matrix Market text is
// parsed by the chunked parallel reader (unless opts.Serial), deduplicated,
// and converted to the bipartite CSR pair; .nwhyb snapshots holding a CSR
// deserialize straight into the incidence structure, skipping parse and
// dedup entirely.
func LoadFile(path string, opts LoadOptions) (*NWHypergraph, error) {
	eng := opts.Engine
	if eng == nil {
		eng = parallel.SharedEngine()
	}
	format := opts.Format
	if format == FormatAuto {
		if strings.HasSuffix(path, mmio.SnapshotExt) || mmio.IsSnapshotFile(path) {
			format = FormatSnapshot
		} else {
			format = FormatMatrixMarket
		}
	}
	if format == FormatSnapshot {
		snap, err := mmio.LoadSnapshot(eng, path)
		if err != nil {
			return nil, err
		}
		if snap.CSR != nil {
			return newHandle(core.FromIncidenceCSR(snap.CSR), opts.Engine), nil
		}
		if err := snap.Bel.DedupOn(eng); err != nil {
			return nil, err
		}
		return newHandle(core.FromBiEdgeList(snap.Bel), opts.Engine), nil
	}
	var (
		bel *sparse.BiEdgeList
		err error
	)
	if opts.Serial {
		bel, err = mmio.GraphReader(path)
	} else {
		bel, err = mmio.GraphReaderParallel(eng, path)
	}
	if err != nil {
		return nil, err
	}
	if err := bel.DedupOn(eng); err != nil {
		return nil, err
	}
	return newHandle(core.FromBiEdgeList(bel), opts.Engine), nil
}

// Save writes the hypergraph to a Matrix Market incidence file.
func (g *NWHypergraph) Save(path string) error {
	h := g.hg()
	bel := sparse.NewBiEdgeList(h.NumEdges(), h.NumNodes())
	for e, nbrs := range h.EdgeRange() {
		for _, v := range nbrs {
			bel.Add(uint32(e), v)
		}
	}
	return mmio.WriteHypergraphFile(path, bel)
}

// SaveSnapshot writes the hypergraph's incidence CSR to path in the .nwhyb
// binary snapshot format. Loading it back with LoadFile skips text parsing,
// deduplication, and CSR construction entirely — the incidence structure
// deserializes directly.
func (g *NWHypergraph) SaveSnapshot(path string) error {
	return mmio.SaveSnapshot(path, &mmio.Snapshot{CSR: g.hg().Edges})
}

// Hypergraph exposes the underlying bipartite representation for advanced
// use alongside the internal packages.
func (g *NWHypergraph) Hypergraph() *core.Hypergraph { return g.hg() }

// Wrap adopts an existing core.Hypergraph (e.g. from internal/gen) as a
// facade handle without copying.
func Wrap(h *core.Hypergraph) *NWHypergraph { return newHandle(h, nil) }

// NumEdges reports |E|.
func (g *NWHypergraph) NumEdges() int { return g.hg().NumEdges() }

// NumNodes reports |V|.
func (g *NWHypergraph) NumNodes() int { return g.hg().NumNodes() }

// NumIncidences reports the incidence count (non-zeros of the incidence
// matrix).
func (g *NWHypergraph) NumIncidences() int { return g.hg().NumIncidences() }

// EdgeDegree reports hyperedge e's member count |e|.
func (g *NWHypergraph) EdgeDegree(e int) int { return g.hg().EdgeDegree(e) }

// NodeDegree reports hypernode v's hyperedge count d(v).
func (g *NWHypergraph) NodeDegree(v int) int { return g.hg().NodeDegree(v) }

// Incidence returns hyperedge e's members.
func (g *NWHypergraph) Incidence(e int) []uint32 { return g.hg().EdgeIncidence(e) }

// Memberships returns hypernode v's hyperedges.
func (g *NWHypergraph) Memberships(v int) []uint32 { return g.hg().NodeIncidence(v) }

// Dual returns the dual hypergraph H* (shares storage and engine).
func (g *NWHypergraph) Dual() *NWHypergraph {
	return newHandle(g.hg().Dual(), g.eng)
}

// Stats computes the Table I characteristics row.
func (g *NWHypergraph) Stats() core.Stats { return core.ComputeStats(g.hg()) }

// Adjoin returns the adjoin representation, built on first call and cached
// across every copy of the handle. It is safe for concurrent callers:
// builders are serialized and at most one adjoin graph is ever cached. A
// build aborted by a cancelled engine context is returned to its caller but
// not cached, so a later call retries with a live context.
func (g *NWHypergraph) Adjoin() *core.AdjoinGraph {
	snap := g.snap()
	lz := g.lazy
	if lz == nil {
		// Zero-value handle (no constructor ran): build uncached.
		return core.Adjoin(g.engine(), snap.h)
	}
	lz.mu.Lock()
	defer lz.mu.Unlock()
	// The cache is keyed to the snapshot epoch: a committed mutation moves
	// the epoch, so a stale adjoin graph is rebuilt on next use.
	if lz.adjoin == nil || lz.adjoinEpoch != snap.epoch {
		eng := g.engine()
		a := core.Adjoin(eng, snap.h)
		if eng.Err() != nil {
			return a
		}
		lz.adjoin = a
		lz.adjoinEpoch = snap.epoch
	}
	return lz.adjoin
}

// degreeStats returns the memoized hyperedge degree statistics of the
// current snapshot, computing them engine-parallel on eng on first use. The
// cache follows the adjoin discipline: epoch-keyed, built under mu, never
// populated from a cancelled engine (nil is returned instead and the kernel
// falls back to its own scan).
func (g *NWHypergraph) degreeStats(eng *Engine) *slinegraph.DegreeStats {
	snap := g.snap()
	lz := g.lazy
	if lz == nil {
		// Zero-value handle (no constructor ran): compute uncached.
		st := slinegraph.ComputeDegreeStats(eng, slinegraph.FromHypergraph(snap.h))
		if eng.Err() != nil {
			return nil
		}
		return &st
	}
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if lz.dstats == nil || lz.dstatsEpoch != snap.epoch {
		st := slinegraph.ComputeDegreeStats(eng, slinegraph.FromHypergraph(snap.h))
		if eng.Err() != nil {
			return nil
		}
		lz.dstats = &st
		lz.dstatsEpoch = snap.epoch
	}
	return lz.dstats
}

// toplexCover returns the memoized (toplexes, containment map) of the
// current snapshot, computing core.ToplexCover on eng on first use. Same
// cache discipline as Adjoin: epoch-keyed (a Commit invalidates it), built
// under mu, never populated from a cancelled engine. The returned slices
// alias the cache — internal consumers only read them; public accessors
// copy.
func (g *NWHypergraph) toplexCover(eng *Engine) (tops, cover []uint32, err error) {
	snap := g.snap()
	lz := g.lazy
	if lz == nil {
		tops, cover = core.ToplexCover(eng, snap.h)
		return tops, cover, eng.Err()
	}
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if !lz.topsValid || lz.topsEpoch != snap.epoch {
		tops, cover = core.ToplexCover(eng, snap.h)
		if err := eng.Err(); err != nil {
			return nil, nil, err
		}
		lz.tops, lz.cover = tops, cover
		lz.topsEpoch, lz.topsValid = snap.epoch, true
	}
	return lz.tops, lz.cover, nil
}

// toplexCacheWarm reports whether the toplex cache already holds the
// current snapshot's containment map — the signal PruneAuto uses to take
// the toplex-only path only when it costs nothing extra.
func (g *NWHypergraph) toplexCacheWarm() bool {
	lz := g.lazy
	if lz == nil {
		return false
	}
	snap := g.snap()
	lz.mu.Lock()
	defer lz.mu.Unlock()
	return lz.topsValid && lz.topsEpoch == snap.epoch
}

// Toplexes returns the IDs of the maximal hyperedges (paper Algorithm 3),
// served from an epoch-keyed cache shared with Toplexify and the
// toplex-only s-component path; a committed mutation invalidates it like
// the adjoin graph.
func (g *NWHypergraph) Toplexes() []uint32 {
	tops, _, err := g.toplexCover(g.engine())
	if err != nil {
		return nil
	}
	return append([]uint32(nil), tops...)
}

// ToplexesCtx is Toplexes bounded by ctx: the scan aborts at the next grain
// boundary once ctx is cancelled and returns ctx.Err().
func (g *NWHypergraph) ToplexesCtx(ctx context.Context) ([]uint32, error) {
	tops, _, err := g.toplexCover(g.engine().WithContext(ctx))
	if err != nil {
		return nil, err
	}
	return append([]uint32(nil), tops...), nil
}

// Toplexify returns the hypergraph restricted to its toplexes (IDs from the
// shared epoch-keyed toplex cache).
func (g *NWHypergraph) Toplexify() *NWHypergraph {
	tops, _, _ := g.toplexCover(g.engine())
	return Wrap(core.RestrictToEdges(g.hg(), tops)).WithEngine(g.engine())
}

// CollapseEdges merges duplicate hyperedges into representatives, returning
// the reduced hypergraph and the equivalence classes (the Python API's
// collapse_edges()).
func (g *NWHypergraph) CollapseEdges() (*NWHypergraph, [][]uint32) {
	r := core.CollapseEdges(g.engine(), g.hg())
	return Wrap(r.H), r.Classes
}

// CollapseNodes merges hypernodes with identical hyperedge memberships
// (collapse_nodes()).
func (g *NWHypergraph) CollapseNodes() (*NWHypergraph, [][]uint32) {
	r := core.CollapseNodes(g.engine(), g.hg())
	return Wrap(r.H), r.Classes
}

// CollapseNodesAndEdges collapses duplicate hypernodes, then duplicate
// hyperedges (collapse_nodes_and_edges()).
func (g *NWHypergraph) CollapseNodesAndEdges() (*NWHypergraph, [][]uint32) {
	r, _ := core.CollapseNodesAndEdges(g.engine(), g.hg())
	return Wrap(r.H), r.Classes
}

// EdgeSizeDist returns the histogram of hyperedge sizes: dist[d] counts
// hyperedges with exactly d members (edge_size_dist()).
func (g *NWHypergraph) EdgeSizeDist() []int { return core.EdgeSizeDist(g.hg()) }

// NodeDegreeDist returns the histogram of hypernode degrees.
func (g *NWHypergraph) NodeDegreeDist() []int { return core.NodeDegreeDist(g.hg()) }

// RestrictToEdges returns the sub-hypergraph induced by the given
// hyperedges (renumbered in the given order).
func (g *NWHypergraph) RestrictToEdges(edgeIDs []uint32) *NWHypergraph {
	return Wrap(core.RestrictToEdges(g.hg(), edgeIDs))
}

// RestrictToNodes returns the sub-hypergraph induced by the given
// hypernodes (renumbered in the given order).
func (g *NWHypergraph) RestrictToNodes(nodeIDs []uint32) *NWHypergraph {
	return Wrap(core.RestrictToNodes(g.hg(), nodeIDs))
}

// Validate checks structural invariants of the representation.
func (g *NWHypergraph) Validate() error { return g.hg().Validate() }

// SetNumThreads sets the worker count of the shared engine's pool, the
// analogue of constraining oneTBB's concurrency. n < 1 resets to GOMAXPROCS.
// It is a compatibility shim over the explicit-engine API: handles bound to
// their own engine (NewWithEngine / WithEngine) are unaffected.
func SetNumThreads(n int) { parallel.SetNumWorkers(n) }

// NumThreads reports the current worker count.
func NumThreads() int { return parallel.NumWorkers() }

// CliqueExpansion computes the clique-expansion graph of the hypergraph
// (the 1-line graph of the dual): each hyperedge becomes a clique over its
// members. Returned pairs are hypernode ID pairs. If the bound engine's
// context is cancelled the result is nil; use CliqueExpansionCtx to observe
// the error.
func (g *NWHypergraph) CliqueExpansion() []sparse.Edge {
	pairs, _ := slinegraph.CliqueExpansion(g.engine(), g.hg(), slinegraph.Options{})
	return pairs
}

// CliqueExpansionCtx is CliqueExpansion bounded by ctx: the construction
// aborts at the next grain boundary once ctx is cancelled and returns
// ctx.Err().
func (g *NWHypergraph) CliqueExpansionCtx(ctx context.Context) ([]sparse.Edge, error) {
	return slinegraph.CliqueExpansion(g.engine().WithContext(ctx), g.hg(), slinegraph.Options{})
}
