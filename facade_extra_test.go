package nwhy

import (
	"math"
	"reflect"
	"testing"
)

func TestCollapseEdgesFacade(t *testing.T) {
	hg := FromSets([][]uint32{{0, 1}, {0, 1}, {2}}, 3)
	collapsed, classes := hg.CollapseEdges()
	if collapsed.NumEdges() != 2 {
		t.Fatalf("collapsed edges = %d", collapsed.NumEdges())
	}
	if !reflect.DeepEqual(classes, [][]uint32{{0, 1}, {2}}) {
		t.Fatalf("classes = %v", classes)
	}
}

func TestCollapseNodesFacade(t *testing.T) {
	hg := FromSets([][]uint32{{0, 1, 2}}, 3)
	collapsed, classes := hg.CollapseNodes()
	if collapsed.NumNodes() != 1 || len(classes) != 1 {
		t.Fatalf("nodes = %d classes = %v", collapsed.NumNodes(), classes)
	}
}

func TestCollapseNodesAndEdgesFacade(t *testing.T) {
	hg := FromSets([][]uint32{{0, 1}, {0, 1}}, 2)
	collapsed, _ := hg.CollapseNodesAndEdges()
	if collapsed.NumEdges() != 1 || collapsed.NumNodes() != 1 {
		t.Fatalf("shape %d/%d", collapsed.NumEdges(), collapsed.NumNodes())
	}
}

func TestDistsFacade(t *testing.T) {
	hg := paperExample()
	esd := hg.EdgeSizeDist()
	if !reflect.DeepEqual(esd, []int{0, 0, 0, 3, 1}) {
		t.Fatalf("EdgeSizeDist = %v", esd)
	}
	ndd := hg.NodeDegreeDist()
	if !reflect.DeepEqual(ndd, []int{0, 5, 4}) {
		t.Fatalf("NodeDegreeDist = %v", ndd)
	}
}

func TestRestrictFacade(t *testing.T) {
	hg := paperExample()
	sub := hg.RestrictToEdges([]uint32{0, 2})
	if sub.NumEdges() != 2 {
		t.Fatal("RestrictToEdges wrong")
	}
	sub2 := hg.RestrictToNodes([]uint32{0, 1, 2})
	if sub2.NumNodes() != 3 {
		t.Fatal("RestrictToNodes wrong")
	}
}

func TestToplexifyFacade(t *testing.T) {
	hg := FromSets([][]uint32{{0, 1, 2}, {0, 1}}, 3)
	tp := hg.Toplexify()
	if tp.NumEdges() != 1 {
		t.Fatalf("toplexified edges = %d", tp.NumEdges())
	}
}

func TestBFSDirectionOptimizingVariant(t *testing.T) {
	hg := paperExample()
	want := hg.BFS(0, BFSTopDown)
	got := hg.BFS(0, BFSDirectionOptimizing)
	if !reflect.DeepEqual(got.EdgeLevel, want.EdgeLevel) || !reflect.DeepEqual(got.NodeLevel, want.NodeLevel) {
		t.Fatal("direction-optimizing HyperBFS disagrees")
	}
}

func TestSConnectedComponentsDirectFacade(t *testing.T) {
	hg := paperExample()
	direct := hg.SConnectedComponentsDirect(1)
	viaGraph := hg.SLineGraph(1, true).SConnectedComponents()
	if !reflect.DeepEqual(direct, viaGraph) {
		t.Fatalf("direct = %v, via line graph = %v", direct, viaGraph)
	}
	if len(direct) != hg.NumEdges() {
		t.Fatal("direct labels length wrong")
	}
}

func TestEnsembleQueueFacade(t *testing.T) {
	hg := FromSets([][]uint32{{0, 1, 2, 3}, {1, 2, 3, 4}, {2, 3, 4, 5}}, 6)
	for _, adjoin := range []bool{false, true} {
		byS := hg.SLineGraphEnsembleQueue([]int{1, 2, 3}, adjoin)
		for s, lg := range byS {
			want := hg.SLineGraph(s, true)
			if !reflect.DeepEqual(lg.Pairs(), want.Pairs()) {
				t.Fatalf("queue ensemble (adjoin=%v) s=%d differs", adjoin, s)
			}
		}
	}
}

func TestHyperTreeFacade(t *testing.T) {
	hg := paperExample()
	tr := hg.HyperTree(0)
	if !tr.Verify(hg.Hypergraph()) {
		t.Fatal("hypertree invariants violated")
	}
	path := tr.HyperPathToEdge(2)
	if len(path) != 5 || path[0].ID != 0 || path[4].ID != 2 {
		t.Fatalf("hyperpath = %v", path)
	}
}

func TestWeightedSLineGraphFacade(t *testing.T) {
	hg := FromSets([][]uint32{
		{0, 1, 2, 3},
		{1, 2, 3, 4},
		{4, 5},
	}, 6)
	wl := hg.SLineGraphWeighted(1)
	if wl.Strength(0, 1) != 3 {
		t.Fatalf("Strength = %d", wl.Strength(0, 1))
	}
	if d := wl.SDistanceWeighted(0, 2); math.Abs(d-(1.0/3.0+1.0)) > 1e-9 {
		t.Fatalf("weighted distance = %v", d)
	}
	// Plain s-metrics still available through the embedded handle.
	if wl.SDistance(0, 2) != 2 {
		t.Fatalf("hop distance = %d", wl.SDistance(0, 2))
	}
}
