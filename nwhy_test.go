package nwhy

import (
	"path/filepath"
	"reflect"
	"testing"
)

// TestListing5Workflow reproduces the paper's Listing 5 Python session:
// a hypergraph with two hyperedges {0,1,2} and {0,1,2} (columns 0 and 1),
// its 2-line graph, and every s-metric query.
func TestListing5Workflow(t *testing.T) {
	col := []uint32{0, 0, 0, 1, 1, 1} // hyperedge IDs
	row := []uint32{0, 1, 2, 0, 1, 2} // hypernode IDs
	weight := []float64{1, 1, 1, 1, 1, 1}
	hg, err := New(col, row, weight) // hg = nwhy.NWHypergraph(row, col, weight)
	if err != nil {
		t.Fatal(err)
	}
	s2lg := hg.SLineGraph(2, true) // s2lg = hg.s_linegraph(s=2, edges=True)
	if !s2lg.IsSConnected() {      // s2lg.is_s_connected()
		t.Fatal("two triples sharing 3 nodes must be 2-connected")
	}
	if sn := s2lg.SNeighbors(0); !reflect.DeepEqual(sn, []uint32{1}) { // s_neighbors(v=0)
		t.Fatalf("s-neighbors = %v", sn)
	}
	if sd := s2lg.SDegree(0); sd != 1 { // s_degree(v=0)
		t.Fatalf("s-degree = %d", sd)
	}
	scc := s2lg.SConnectedComponents() // s_connected_components()
	if scc[0] != scc[1] {
		t.Fatalf("components = %v", scc)
	}
	if sdist := s2lg.SDistance(0, 1); sdist != 1 { // s_distance(src=0, dest=1)
		t.Fatalf("s-distance = %d", sdist)
	}
	if sp := s2lg.SPath(0, 1); !reflect.DeepEqual(sp, []uint32{0, 1}) { // s_path(...)
		t.Fatalf("s-path = %v", sp)
	}
	sbc := s2lg.SBetweennessCentrality(true) // s_betweenness_centrality(normalized=True)
	if len(sbc) != 2 {
		t.Fatalf("sbc = %v", sbc)
	}
	sc := s2lg.SClosenessCentrality() // s_closeness_centrality()
	if sc[0] != 1 || sc[1] != 1 {
		t.Fatalf("closeness = %v", sc)
	}
	shc := s2lg.SHarmonicClosenessCentrality() // s_harmonic_closeness_centrality()
	if shc[0] != 1 {
		t.Fatalf("harmonic = %v", shc)
	}
	se := s2lg.SEccentricity() // s_eccentricity()
	if se[0] != 1 || se[1] != 1 {
		t.Fatalf("eccentricity = %v", se)
	}
}

func paperExample() *NWHypergraph {
	return FromSets([][]uint32{
		{0, 1, 2},
		{2, 3, 4},
		{4, 5, 6},
		{0, 6, 7, 8},
	}, 9)
}

func TestNewValidatesLengths(t *testing.T) {
	if _, err := New([]uint32{0}, []uint32{0, 1}, nil); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := New([]uint32{0}, []uint32{0}, []float64{1, 2}); err == nil {
		t.Fatal("weight mismatch accepted")
	}
}

func TestNewDedupsIncidences(t *testing.T) {
	hg, err := New([]uint32{0, 0}, []uint32{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if hg.NumIncidences() != 1 {
		t.Fatalf("incidences = %d", hg.NumIncidences())
	}
}

func TestBasicAccessors(t *testing.T) {
	hg := paperExample()
	if hg.NumEdges() != 4 || hg.NumNodes() != 9 || hg.NumIncidences() != 13 {
		t.Fatal("shape wrong")
	}
	if hg.EdgeDegree(3) != 4 || hg.NodeDegree(0) != 2 {
		t.Fatal("degrees wrong")
	}
	if !reflect.DeepEqual(hg.Incidence(0), []uint32{0, 1, 2}) {
		t.Fatal("Incidence wrong")
	}
	if !reflect.DeepEqual(hg.Memberships(4), []uint32{1, 2}) {
		t.Fatal("Memberships wrong")
	}
	if err := hg.Validate(); err != nil {
		t.Fatal(err)
	}
	st := hg.Stats()
	if st.MaxEdgeDegree != 4 {
		t.Fatalf("stats %+v", st)
	}
	if hg.Dual().NumEdges() != 9 {
		t.Fatal("dual wrong")
	}
}

func TestAllBFSVariantsAgree(t *testing.T) {
	hg := paperExample()
	want := hg.BFS(0, BFSTopDown)
	for _, v := range []BFSVariant{BFSBottomUp, BFSAdjoin, BFSHygraBaseline} {
		got := hg.BFS(0, v)
		if !reflect.DeepEqual(got.EdgeLevel, want.EdgeLevel) || !reflect.DeepEqual(got.NodeLevel, want.NodeLevel) {
			t.Fatalf("variant %d disagrees", v)
		}
	}
}

func TestAllCCVariantsAgree(t *testing.T) {
	hg := FromSets([][]uint32{{0, 1}, {1, 2}, {4, 5}}, 6)
	want := hg.ConnectedComponents(CCHyper)
	for _, v := range []CCVariant{CCAdjoinAfforest, CCAdjoinLabelProp, CCHygraBaseline} {
		got := hg.ConnectedComponents(v)
		if !reflect.DeepEqual(got.EdgeComp, want.EdgeComp) || !reflect.DeepEqual(got.NodeComp, want.NodeComp) {
			t.Fatalf("variant %d disagrees", v)
		}
	}
	if want.NumComponents() != 3 {
		t.Fatalf("components = %d, want 3 (two edge groups + isolated node 3)", want.NumComponents())
	}
}

func TestAllConstructionAlgorithmsAgree(t *testing.T) {
	hg := paperExample()
	want := hg.SLineGraphWith(1, true, ConstructOptions{Algorithm: AlgoNaive})
	for _, algo := range []Algorithm{AlgoHashmap, AlgoIntersection, AlgoQueueHashmap, AlgoQueueIntersection} {
		for _, cyclic := range []bool{false, true} {
			got := hg.SLineGraphWith(1, true, ConstructOptions{Algorithm: algo, Cyclic: cyclic})
			if !reflect.DeepEqual(got.Pairs(), want.Pairs()) {
				t.Fatalf("%v cyclic=%v: %v want %v", algo, cyclic, got.Pairs(), want.Pairs())
			}
		}
	}
	// Queue algorithms on the adjoin representation.
	for _, algo := range []Algorithm{AlgoQueueHashmap, AlgoQueueIntersection} {
		got := hg.SLineGraphWith(1, true, ConstructOptions{Algorithm: algo, UseAdjoin: true})
		if !reflect.DeepEqual(got.Pairs(), want.Pairs()) {
			t.Fatalf("%v on adjoin differs", algo)
		}
	}
}

func TestSCliqueGraphViaEdgesFalse(t *testing.T) {
	hg := paperExample()
	lg := hg.SLineGraph(1, false) // 1-clique graph over hypernodes
	if lg.NumVertices() != 9 {
		t.Fatalf("clique-side line graph vertices = %d", lg.NumVertices())
	}
	// Node 0 is adjacent (shares an edge) with 1,2,6,7,8.
	if !reflect.DeepEqual(lg.SNeighbors(0), []uint32{1, 2, 6, 7, 8}) {
		t.Fatalf("neighbors = %v", lg.SNeighbors(0))
	}
}

func TestCliqueExpansionMatchesDualLineGraph(t *testing.T) {
	hg := paperExample()
	ce := hg.CliqueExpansion()
	lg := hg.SLineGraph(1, false)
	if len(ce) != lg.NumEdges() {
		t.Fatalf("clique expansion %d edges vs dual 1-line %d", len(ce), lg.NumEdges())
	}
}

func TestEnsembleFacade(t *testing.T) {
	hg := FromSets([][]uint32{{0, 1, 2, 3}, {1, 2, 3, 4}, {2, 3, 4, 5}}, 6)
	byS := hg.SLineGraphEnsemble([]int{1, 2, 3}, true)
	for s, lg := range byS {
		want := hg.SLineGraphWith(s, true, ConstructOptions{Algorithm: AlgoHashmap})
		if !reflect.DeepEqual(lg.Pairs(), want.Pairs()) {
			t.Fatalf("ensemble s=%d differs", s)
		}
	}
}

func TestToplexesFacade(t *testing.T) {
	hg := FromSets([][]uint32{{0, 1, 2}, {0, 1}, {3}}, 4)
	if got := hg.Toplexes(); !reflect.DeepEqual(got, []uint32{0, 2}) {
		t.Fatalf("toplexes = %v", got)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	hg := paperExample()
	path := filepath.Join(t.TempDir(), "paper.mtx")
	if err := hg.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumEdges() != 4 || back.NumIncidences() != 13 {
		t.Fatal("round trip changed shape")
	}
	if !reflect.DeepEqual(back.Incidence(3), hg.Incidence(3)) {
		t.Fatal("round trip changed contents")
	}
}

func TestSetNumThreads(t *testing.T) {
	SetNumThreads(2)
	if NumThreads() != 2 {
		t.Fatalf("NumThreads = %d", NumThreads())
	}
	hg := paperExample()
	r := hg.BFS(0, BFSTopDown)
	if r.ReachedEdges() != 4 {
		t.Fatal("BFS broken at 2 threads")
	}
	SetNumThreads(0) // reset to GOMAXPROCS
	if NumThreads() < 1 {
		t.Fatal("reset failed")
	}
}

func TestAdjoinCached(t *testing.T) {
	hg := paperExample()
	a1 := hg.Adjoin()
	a2 := hg.Adjoin()
	if a1 != a2 {
		t.Fatal("Adjoin should be cached")
	}
	if a1.NumVertices() != 13 {
		t.Fatal("adjoin shape wrong")
	}
}

func TestAlgorithmStrings(t *testing.T) {
	names := map[Algorithm]string{
		AlgoHashmap:           "hashmap",
		AlgoIntersection:      "intersection",
		AlgoNaive:             "naive",
		AlgoQueueHashmap:      "queue-hashmap (Alg 1)",
		AlgoQueueIntersection: "queue-intersection (Alg 2)",
	}
	for a, want := range names {
		if a.String() != want {
			t.Errorf("%d.String() = %q", a, a.String())
		}
	}
}
