package nwhy

import (
	"context"

	"nwhy/internal/slinegraph"
	"nwhy/internal/smetrics"
	"nwhy/internal/sparse"
)

// Algorithm selects an s-line-graph construction algorithm.
type Algorithm int

const (
	// AlgoHashmap is the hashmap-counting algorithm (IPDPS'22), the paper's
	// best-performing non-queue construction and the default.
	AlgoHashmap Algorithm = iota
	// AlgoIntersection is the set-intersection heuristic (HiPC'21).
	AlgoIntersection
	// AlgoNaive is the all-pairs baseline.
	AlgoNaive
	// AlgoQueueHashmap is the paper's Algorithm 1: single-phase queue-based
	// hashmap counting. Works on any hyperedge ID space.
	AlgoQueueHashmap
	// AlgoQueueIntersection is the paper's Algorithm 2: two-phase
	// queue-based set intersection. Works on any hyperedge ID space.
	AlgoQueueIntersection
)

func (a Algorithm) String() string {
	switch a {
	case AlgoIntersection:
		return "intersection"
	case AlgoNaive:
		return "naive"
	case AlgoQueueHashmap:
		return "queue-hashmap (Alg 1)"
	case AlgoQueueIntersection:
		return "queue-intersection (Alg 2)"
	default:
		return "hashmap"
	}
}

// Strategy selects the unified kernel's overlap-counting strategy — the
// counter axis of the s-overlap construction kernel. It applies to the
// default (kernel) construction path and to the weighted variants; the
// legacy Algorithm values pin it instead.
type Strategy int

const (
	// StrategyAuto picks a counter from s and the degree statistics.
	StrategyAuto Strategy = iota
	// StrategyHashmap tallies overlaps in per-worker hash maps.
	StrategyHashmap
	// StrategyDense tallies overlaps in per-worker dense stamp/counter
	// arrays indexed by hyperedge ID.
	StrategyDense
	// StrategyIntersection sorted-merge intersects candidate incidence
	// lists, short-circuiting at s.
	StrategyIntersection
)

func (s Strategy) String() string { return slinegraph.Counter(s).String() }

// Schedule selects how hyperedges are distributed over workers — the
// schedule axis of the s-overlap construction kernel.
type Schedule int

const (
	// ScheduleDefault derives blocked or cyclic from the Cyclic option.
	ScheduleDefault Schedule = iota
	// ScheduleBlocked assigns contiguous chunks.
	ScheduleBlocked
	// ScheduleCyclic assigns hyperedges round-robin with a stride.
	ScheduleCyclic
	// ScheduleQueue is the paper's dynamic work queue.
	ScheduleQueue
	// ScheduleAuto picks a schedule from the relabel order and degree skew.
	ScheduleAuto
)

func (s Schedule) String() string { return slinegraph.Schedule(s).String() }

// Prune selects the intent-aware pruning heuristics — the fourth kernel
// axis (the companion paper's algorithmic cuts). The heuristics compose in
// order; levels that drop pairs (connectivity, toplex) only ever apply to
// connectivity-intent runs (the SConnectedComponents* family) and silently
// degrade to the result-identical degree prefilter everywhere else.
type Prune int

const (
	// PruneAuto resolves from the query intent: the degree prefilter for
	// pair-list constructions, the connectivity arsenal for component
	// queries (upgrading to the toplex-only path when the handle's toplex
	// cache is already warm).
	PruneAuto Prune = iota
	// PruneNone disables every heuristic — the benchmark baseline.
	PruneNone
	// PruneDegree prefilters the work list to hyperedges with deg ≥ s once
	// up front (engine-parallel bitset + filtered span).
	PruneDegree
	// PruneConnectivity adds the union-find connected short-circuit:
	// candidate pairs already in one s-component skip counting.
	PruneConnectivity
	// PruneToplex additionally restricts construction to the maximal
	// hyperedges, expanding labels through the containment map; forcing it
	// computes (and caches) the toplex cover if cold.
	PruneToplex
)

func (p Prune) String() string { return slinegraph.Prune(p).String() }

// ConstructOptions configure s-line-graph construction. The one options
// struct covers every variant — unweighted, weighted, queue or not: the
// Strategy and Schedule axes select the kernel configuration, while the
// legacy Algorithm values keep their historical meaning by pinning those
// axes.
type ConstructOptions struct {
	Algorithm Algorithm
	// Strategy selects the overlap-counting strategy for the kernel path
	// (Algorithm == AlgoHashmap). Zero value: auto-resolve.
	Strategy Strategy
	// Schedule selects the work distribution for the kernel path. Zero
	// value: blocked or cyclic per the Cyclic option.
	Schedule Schedule
	// Cyclic selects the cyclic range partition instead of blocked.
	Cyclic bool
	// NumBins is the cyclic stride count (<= 0: automatic).
	NumBins int
	// Relabel applies relabel-by-degree before construction.
	Relabel sparse.Order
	// UseAdjoin feeds the kernel and queue-based algorithms the adjoin
	// representation instead of the bipartite one (ignored by the legacy
	// non-queue algorithms, which require the bipartite form's contiguous
	// ID space).
	UseAdjoin bool
	// Prune selects the pruning heuristics (kernel axis 4). Zero value:
	// auto-resolve from the query intent. Pair-list constructions clamp
	// levels above PruneDegree, since dropping pairs is only sound for
	// component queries.
	Prune Prune
}

func (o ConstructOptions) internal() slinegraph.Options {
	part := slinegraph.BlockedPartition
	if o.Cyclic {
		part = slinegraph.CyclicPartition
	}
	return slinegraph.Options{
		Partition: part,
		NumBins:   o.NumBins,
		Relabel:   o.Relabel,
		Counter:   slinegraph.Counter(o.Strategy),
		Schedule:  slinegraph.Schedule(o.Schedule),
		Prune:     slinegraph.Prune(o.Prune),
	}
}

// SLineGraph is a materialized s-line graph handle exposing the s-metric
// queries of the Python API (Listing 5). It remembers the snapshot epoch it
// was built from, so RefreshSLineGraph can patch it incrementally after
// mutations instead of rebuilding.
type SLineGraph struct {
	*smetrics.SLineGraph
	// epoch and del identify the snapshot the graph was built from.
	epoch, del uint64
	// overEdges records the edges=true orientation — the only one the
	// incremental patch path covers (the dual's ID space shifts with node
	// mutations).
	overEdges bool
}

// Epoch reports the snapshot epoch the handle was built from.
func (l *SLineGraph) Epoch() uint64 { return l.epoch }

// SLineGraph constructs the s-line graph of the hypergraph with the default
// (hashmap) algorithm. With edges=true the line graph is over hyperedges
// (s-line graph); with edges=false it is over hypernodes (the s-clique
// graph of the dual), mirroring hg.s_linegraph(s, edges).
func (g *NWHypergraph) SLineGraph(s int, edges bool) *SLineGraph {
	return g.SLineGraphWith(s, edges, ConstructOptions{})
}

// SLineGraphWith constructs the s-line graph with explicit algorithm and
// partition options. If the bound engine's context is cancelled the result
// is nil; use SLineGraphCtx to observe the error.
func (g *NWHypergraph) SLineGraphWith(s int, edges bool, o ConstructOptions) *SLineGraph {
	l, _ := g.slgOn(g.engine(), s, edges, o)
	return l
}

// SLineGraphCtx is SLineGraphWith bounded by ctx: the construction aborts at
// the next grain boundary once ctx is cancelled and returns ctx.Err(). The
// returned handle stays bound to the handle's engine (without ctx), so
// subsequent s-metric queries are not affected by an expired deadline.
func (g *NWHypergraph) SLineGraphCtx(ctx context.Context, s int, edges bool, o ConstructOptions) (*SLineGraph, error) {
	return g.slgOn(g.engine().WithContext(ctx), s, edges, o)
}

func (g *NWHypergraph) slgOn(eng *Engine, s int, edges bool, o ConstructOptions) (*SLineGraph, error) {
	snap := g.snap()
	h := snap.h
	if !edges {
		h = snap.h.Dual()
	}
	stamp := func(l *smetrics.SLineGraph) *SLineGraph {
		return &SLineGraph{SLineGraph: l, epoch: snap.epoch, del: snap.del, overEdges: edges}
	}
	var (
		pairs []sparse.Edge
		err   error
	)
	opts := o.internal()
	if edges {
		// The memoized degree statistics only describe the hyperedge side;
		// dual (edges=false) constructions fall back to the kernel's scan.
		opts.Stats = g.degreeStats(eng)
	}
	switch o.Algorithm {
	case AlgoNaive:
		pairs, err = slinegraph.Naive(eng, h, s)
	case AlgoIntersection:
		pairs, err = slinegraph.Intersection(eng, h, s, opts)
	case AlgoQueueHashmap, AlgoQueueIntersection:
		var in slinegraph.Input
		if o.UseAdjoin && edges {
			in = slinegraph.FromAdjoin(g.Adjoin())
		} else {
			in = slinegraph.FromHypergraph(h)
		}
		if o.Algorithm == AlgoQueueHashmap {
			pairs, err = slinegraph.QueueHashmap(eng, in, s, opts)
		} else {
			pairs, err = slinegraph.QueueIntersection(eng, in, s, opts)
		}
	default:
		// Kernel path: Strategy and Schedule select the configuration and
		// the adjacency CSR is assembled directly from the kernel's
		// per-worker buffers — no global pair list is materialized. The
		// adjoin form keeps the pair-list adapter because its ID space is
		// wider than the line graph's vertex range.
		if o.UseAdjoin && edges {
			pairs, err = slinegraph.Construct(eng, slinegraph.FromAdjoin(g.Adjoin()), s, opts)
			break
		}
		csr, cerr := slinegraph.ConstructCSR(eng, slinegraph.FromHypergraph(h), s, opts)
		if cerr != nil {
			return nil, cerr
		}
		// Assemble on the same (possibly ctx-bound) engine the kernel ran
		// on, then rebind the handle to the handle's engine so later
		// queries outlive the request deadline.
		l, berr := smetrics.BuildCSR(eng, h, s, csr)
		if berr != nil {
			return nil, berr
		}
		return stamp(l.WithEngine(g.engine())), nil
	}
	if err != nil {
		return nil, err
	}
	nl := smetrics.BuildWith(eng, h, s, pairs)
	if err := eng.Err(); err != nil {
		return nil, err
	}
	return stamp(nl.WithEngine(g.engine())), nil
}

// WeightedSLineGraph is the strength-annotated s-line graph handle: every
// s-line edge carries its exact overlap |e ∩ f| (the edge widths of the
// paper's Figure 5), enabling strength-weighted distances.
type WeightedSLineGraph struct {
	*smetrics.WeightedSLineGraph
}

// SLineGraphWeighted constructs the s-line graph over hyperedges with
// overlap strengths retained.
func (g *NWHypergraph) SLineGraphWeighted(s int) *WeightedSLineGraph {
	return g.SLineGraphWeightedWith(s, ConstructOptions{})
}

// SLineGraphWeightedWith is SLineGraphWeighted with explicit construction
// options — the same ConstructOptions the unweighted variants take. The
// Algorithm field is ignored: the weighted emit mode runs the one kernel
// body under whatever Strategy and Schedule select.
func (g *NWHypergraph) SLineGraphWeightedWith(s int, o ConstructOptions) *WeightedSLineGraph {
	eng := g.engine()
	opts := o.internal()
	opts.Intent = slinegraph.IntentExact
	opts.Stats = g.degreeStats(eng)
	l, _ := smetrics.BuildWeightedOptions(eng, g.hg(), s, opts)
	return &WeightedSLineGraph{l}
}

// SLineGraphWeightedCtx is SLineGraphWeightedWith bounded by ctx: the
// construction aborts at the next grain boundary once ctx is cancelled and
// returns ctx.Err(). The returned handle is rebound to the handle's engine
// (without ctx), so subsequent queries are not affected by an expired
// deadline.
func (g *NWHypergraph) SLineGraphWeightedCtx(ctx context.Context, s int, o ConstructOptions) (*WeightedSLineGraph, error) {
	eng := g.engine().WithContext(ctx)
	opts := o.internal()
	opts.Intent = slinegraph.IntentExact
	opts.Stats = g.degreeStats(eng)
	l, err := smetrics.BuildWeightedOptions(eng, g.hg(), s, opts)
	if err != nil {
		return nil, err
	}
	l.SLineGraph = l.SLineGraph.WithEngine(g.engine())
	return &WeightedSLineGraph{l}, nil
}

// SLineGraphEnsembleQueue computes the s-line graphs for several values of
// s in one queue-driven pass; with useAdjoin it runs directly on the
// adjoin representation.
func (g *NWHypergraph) SLineGraphEnsembleQueue(ss []int, useAdjoin bool) map[int]*SLineGraph {
	snap := g.snap()
	var in slinegraph.Input
	if useAdjoin {
		in = slinegraph.FromAdjoin(g.Adjoin())
	} else {
		in = slinegraph.FromHypergraph(snap.h)
	}
	byS, _ := slinegraph.EnsembleQueue(g.engine(), in, ss, slinegraph.Options{})
	out := make(map[int]*SLineGraph, len(ss))
	for s, pairs := range byS {
		out[s] = &SLineGraph{
			SLineGraph: smetrics.BuildWith(g.engine(), snap.h, s, pairs),
			epoch:      snap.epoch, del: snap.del, overEdges: true,
		}
	}
	return out
}

// SConnectedComponentsDirect computes the s-connected components of the
// hyperedges without materializing the s-line graph: s-incident pairs are
// unioned into a concurrent disjoint-set forest as the queue-based
// construction discovers them. Labels are canonical minimum-member IDs over
// [0, NumEdges()).
func (g *NWHypergraph) SConnectedComponentsDirect(s int) []uint32 {
	labels, _ := g.SConnectedComponentsDirectCtx(context.Background(), s)
	return labels
}

// SConnectedComponentsDirectCtx is SConnectedComponentsDirect bounded by
// ctx: the queue drain stops at the next chunk boundary once ctx is
// cancelled and ctx.Err() is returned. The run declares connectivity
// intent, so the kernel's degree prefilter and connected short-circuit
// apply automatically (labels are identical either way); the axis
// resolution reads the handle's memoized degree statistics.
func (g *NWHypergraph) SConnectedComponentsDirectCtx(ctx context.Context, s int) ([]uint32, error) {
	h := g.hg()
	eng := g.engine().WithContext(ctx)
	opts := slinegraph.Options{Stats: g.degreeStats(eng)}
	labels, err := slinegraph.SComponentsDirect(eng, slinegraph.FromHypergraph(h), s, opts)
	if err != nil {
		return nil, err
	}
	return labels[:h.NumEdges()], nil
}

// SConnectedComponentsPruned computes the s-connected components through
// the intent-aware pruned kernel: prune selects the heuristic level (see
// Prune). Labels are bit-identical to SConnectedComponentsDirect at every
// level — the differential tests pin this — only the work done differs.
func (g *NWHypergraph) SConnectedComponentsPruned(s int, prune Prune) []uint32 {
	labels, _ := g.SConnectedComponentsPrunedCtx(context.Background(), s, prune)
	return labels
}

// SConnectedComponentsPrunedCtx is SConnectedComponentsPruned bounded by
// ctx. PruneAuto runs the connectivity arsenal (degree prefilter +
// connected short-circuit) and upgrades to the toplex-only path when the
// handle's toplex cache is already warm for this snapshot — computing the
// containment map from cold costs about one kernel pass, so Auto never
// pays for it speculatively. PruneToplex forces the toplex path, computing
// and caching the cover if needed (profitable when many component queries
// hit one snapshot, the serving tier's pattern).
func (g *NWHypergraph) SConnectedComponentsPrunedCtx(ctx context.Context, s int, prune Prune) ([]uint32, error) {
	h := g.hg()
	eng := g.engine().WithContext(ctx)
	in := slinegraph.FromHypergraph(h)
	if prune == PruneAuto && g.toplexCacheWarm() {
		prune = PruneToplex
	}
	opts := slinegraph.Options{Stats: g.degreeStats(eng)}
	if prune == PruneToplex {
		tops, cover, err := g.toplexCover(eng)
		if err != nil {
			return nil, err
		}
		labels, err := slinegraph.SComponentsToplex(eng, in, s, tops, cover, opts)
		if err != nil {
			return nil, err
		}
		return labels[:h.NumEdges()], nil
	}
	opts.Prune = slinegraph.Prune(prune)
	labels, err := slinegraph.SComponentsDirect(eng, in, s, opts)
	if err != nil {
		return nil, err
	}
	return labels[:h.NumEdges()], nil
}

// SConnectedComponentsFrontier computes the s-connected components of the
// hyperedges by frontier-parallel label propagation over the implicit
// s-line adjacency (rows recomputed on demand, never materialized). It
// shares the traversal substrate of every BFS/CC kernel; prefer
// SConnectedComponentsDirect when union-find suits the workload. Labels are
// canonical minimum-member IDs over [0, NumEdges()).
func (g *NWHypergraph) SConnectedComponentsFrontier(s int) []uint32 {
	labels, _ := g.SConnectedComponentsFrontierCtx(context.Background(), s)
	return labels
}

// SConnectedComponentsFrontierCtx is SConnectedComponentsFrontier bounded by
// ctx: the propagation stops between frontier rounds once ctx is cancelled
// and ctx.Err() is returned.
func (g *NWHypergraph) SConnectedComponentsFrontierCtx(ctx context.Context, s int) ([]uint32, error) {
	h := g.hg()
	eng := g.engine().WithContext(ctx)
	labels, err := slinegraph.SComponentsFrontier(eng, slinegraph.FromHypergraph(h), s, slinegraph.Options{})
	if err != nil {
		return nil, err
	}
	return labels[:h.NumEdges()], nil
}

// SLineGraphEnsemble constructs the s-line graphs for several values of s
// in one counting pass.
func (g *NWHypergraph) SLineGraphEnsemble(ss []int, edges bool) map[int]*SLineGraph {
	snap := g.snap()
	h := snap.h
	if !edges {
		h = snap.h.Dual()
	}
	byS, _ := slinegraph.Ensemble(g.engine(), h, ss, slinegraph.Options{})
	out := make(map[int]*SLineGraph, len(ss))
	for s, pairs := range byS {
		out[s] = &SLineGraph{
			SLineGraph: smetrics.BuildWith(g.engine(), h, s, pairs),
			epoch:      snap.epoch, del: snap.del, overEdges: edges,
		}
	}
	return out
}
