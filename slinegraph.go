package nwhy

import (
	"nwhy/internal/slinegraph"
	"nwhy/internal/smetrics"
	"nwhy/internal/sparse"
)

// Algorithm selects an s-line-graph construction algorithm.
type Algorithm int

const (
	// AlgoHashmap is the hashmap-counting algorithm (IPDPS'22), the paper's
	// best-performing non-queue construction and the default.
	AlgoHashmap Algorithm = iota
	// AlgoIntersection is the set-intersection heuristic (HiPC'21).
	AlgoIntersection
	// AlgoNaive is the all-pairs baseline.
	AlgoNaive
	// AlgoQueueHashmap is the paper's Algorithm 1: single-phase queue-based
	// hashmap counting. Works on any hyperedge ID space.
	AlgoQueueHashmap
	// AlgoQueueIntersection is the paper's Algorithm 2: two-phase
	// queue-based set intersection. Works on any hyperedge ID space.
	AlgoQueueIntersection
)

func (a Algorithm) String() string {
	switch a {
	case AlgoIntersection:
		return "intersection"
	case AlgoNaive:
		return "naive"
	case AlgoQueueHashmap:
		return "queue-hashmap (Alg 1)"
	case AlgoQueueIntersection:
		return "queue-intersection (Alg 2)"
	default:
		return "hashmap"
	}
}

// ConstructOptions configure s-line-graph construction.
type ConstructOptions struct {
	Algorithm Algorithm
	// Cyclic selects the cyclic range partition instead of blocked.
	Cyclic bool
	// NumBins is the cyclic stride count (<= 0: automatic).
	NumBins int
	// Relabel applies relabel-by-degree before construction.
	Relabel sparse.Order
	// UseAdjoin feeds the queue-based algorithms the adjoin representation
	// instead of the bipartite one (ignored by non-queue algorithms, which
	// require the bipartite form's contiguous ID space).
	UseAdjoin bool
}

func (o ConstructOptions) internal() slinegraph.Options {
	part := slinegraph.BlockedPartition
	if o.Cyclic {
		part = slinegraph.CyclicPartition
	}
	return slinegraph.Options{Partition: part, NumBins: o.NumBins, Relabel: o.Relabel}
}

// SLineGraph is a materialized s-line graph handle exposing the s-metric
// queries of the Python API (Listing 5).
type SLineGraph struct {
	*smetrics.SLineGraph
}

// SLineGraph constructs the s-line graph of the hypergraph with the default
// (hashmap) algorithm. With edges=true the line graph is over hyperedges
// (s-line graph); with edges=false it is over hypernodes (the s-clique
// graph of the dual), mirroring hg.s_linegraph(s, edges).
func (g *NWHypergraph) SLineGraph(s int, edges bool) *SLineGraph {
	return g.SLineGraphWith(s, edges, ConstructOptions{})
}

// SLineGraphWith constructs the s-line graph with explicit algorithm and
// partition options.
func (g *NWHypergraph) SLineGraphWith(s int, edges bool, o ConstructOptions) *SLineGraph {
	h := g.h
	if !edges {
		h = g.h.Dual()
	}
	var pairs []sparse.Edge
	opts := o.internal()
	switch o.Algorithm {
	case AlgoNaive:
		pairs = slinegraph.Naive(h, s)
	case AlgoIntersection:
		pairs = slinegraph.Intersection(h, s, opts)
	case AlgoQueueHashmap, AlgoQueueIntersection:
		var in slinegraph.Input
		if o.UseAdjoin && edges {
			in = slinegraph.FromAdjoin(g.Adjoin())
		} else {
			in = slinegraph.FromHypergraph(h)
		}
		if o.Algorithm == AlgoQueueHashmap {
			pairs = slinegraph.QueueHashmap(in, s, opts)
		} else {
			pairs = slinegraph.QueueIntersection(in, s, opts)
		}
	default:
		pairs = slinegraph.Hashmap(h, s, opts)
	}
	return &SLineGraph{smetrics.BuildWith(h, s, pairs)}
}

// WeightedSLineGraph is the strength-annotated s-line graph handle: every
// s-line edge carries its exact overlap |e ∩ f| (the edge widths of the
// paper's Figure 5), enabling strength-weighted distances.
type WeightedSLineGraph struct {
	*smetrics.WeightedSLineGraph
}

// SLineGraphWeighted constructs the s-line graph over hyperedges with
// overlap strengths retained.
func (g *NWHypergraph) SLineGraphWeighted(s int) *WeightedSLineGraph {
	return &WeightedSLineGraph{smetrics.BuildWeighted(g.h, s)}
}

// SLineGraphEnsembleQueue computes the s-line graphs for several values of
// s in one queue-driven pass; with useAdjoin it runs directly on the
// adjoin representation.
func (g *NWHypergraph) SLineGraphEnsembleQueue(ss []int, useAdjoin bool) map[int]*SLineGraph {
	var in slinegraph.Input
	if useAdjoin {
		in = slinegraph.FromAdjoin(g.Adjoin())
	} else {
		in = slinegraph.FromHypergraph(g.h)
	}
	byS := slinegraph.EnsembleQueue(in, ss, slinegraph.Options{})
	out := make(map[int]*SLineGraph, len(ss))
	for s, pairs := range byS {
		out[s] = &SLineGraph{smetrics.BuildWith(g.h, s, pairs)}
	}
	return out
}

// SConnectedComponentsDirect computes the s-connected components of the
// hyperedges without materializing the s-line graph: s-incident pairs are
// unioned into a concurrent disjoint-set forest as the queue-based
// construction discovers them. Labels are canonical minimum-member IDs over
// [0, NumEdges()).
func (g *NWHypergraph) SConnectedComponentsDirect(s int) []uint32 {
	labels := slinegraph.SComponentsDirect(slinegraph.FromHypergraph(g.h), s, slinegraph.Options{})
	return labels[:g.NumEdges()]
}

// SLineGraphEnsemble constructs the s-line graphs for several values of s
// in one counting pass.
func (g *NWHypergraph) SLineGraphEnsemble(ss []int, edges bool) map[int]*SLineGraph {
	h := g.h
	if !edges {
		h = g.h.Dual()
	}
	byS := slinegraph.Ensemble(h, ss, slinegraph.Options{})
	out := make(map[int]*SLineGraph, len(ss))
	for s, pairs := range byS {
		out[s] = &SLineGraph{smetrics.BuildWith(h, s, pairs)}
	}
	return out
}
