package nwhy

import (
	"context"
	"errors"
	"testing"
)

// TestSLineGraphCtxHandleDetached pins the slgOn contract: construction —
// the kernel, the CSR assembly, and the pair-list build alike — runs on the
// ctx-bound engine, but the returned handle is rebound to the handle's own
// engine, so queries survive the request deadline expiring. AlgoHashmap
// exercises the kernel/BuildCSR path and AlgoNaive the pair-list/BuildWith
// path (the two sites that used to build on the unbound engine).
func TestSLineGraphCtxHandleDetached(t *testing.T) {
	g := engineTestHypergraph(t)
	for _, algo := range []Algorithm{AlgoHashmap, AlgoNaive} {
		ctx, cancel := context.WithCancel(context.Background())
		lg, err := g.SLineGraphCtx(ctx, 2, true, ConstructOptions{Algorithm: algo})
		if err != nil {
			t.Fatalf("algo %v: %v", algo, err)
		}
		cancel()
		if err := lg.Engine().Err(); err != nil {
			t.Fatalf("algo %v: handle engine still bound to the request ctx: %v", algo, err)
		}
		if cc := lg.SConnectedComponents(); len(cc) == 0 {
			t.Fatalf("algo %v: query after deadline expiry returned nothing", algo)
		}
	}
}

// TestRefreshSLineGraphCtxDetached pins the incremental-refresh contract:
// the delta and the merged rebuild run on the ctx-bound engine (a cancelled
// ctx aborts the patch with its error), and the patched handle does not
// retain the request deadline.
func TestRefreshSLineGraphCtxDetached(t *testing.T) {
	g := mutBase()
	lg := g.SLineGraph(2, true)
	if err := g.Mutate(func(m *Mutation) error {
		_, err := m.AddEdge([]uint32{1, 2, 5})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	patched, how, err := g.RefreshSLineGraphCtx(ctx, lg, ConstructOptions{})
	if err != nil || how != RefreshPatched {
		t.Fatalf("refresh: how=%v err=%v", how, err)
	}
	cancel()
	if err := patched.Engine().Err(); err != nil {
		t.Fatalf("patched handle still bound to the request ctx: %v", err)
	}
	if cc := patched.SConnectedComponents(); len(cc) == 0 {
		t.Fatal("query on patched handle after deadline expiry returned nothing")
	}

	if err := g.Mutate(func(m *Mutation) error {
		_, err := m.AddEdge([]uint32{0, 3, 6})
		return err
	}); err != nil {
		t.Fatal(err)
	}
	cancelled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, _, err := g.RefreshSLineGraphCtx(cancelled, patched, ConstructOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled refresh err = %v, want Canceled", err)
	}
}
