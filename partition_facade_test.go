package nwhy

import (
	"context"
	"testing"

	"nwhy/internal/gen"
)

func partitionTestGraph() *NWHypergraph {
	return Wrap(gen.Community(gen.CommunityConfig{
		NumEdges: 300, NumNodes: 400, MeanEdgeSize: 5, SizeSkew: 1.5, MemberSkew: 0.3, Seed: 21,
	}))
}

func TestFacadePartitionCachedPerEpochAndOptions(t *testing.T) {
	g := partitionTestGraph()
	p1, err := g.Partition(PartitionOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := g.Partition(PartitionOptions{K: 4})
	if err != nil {
		t.Fatal(err)
	}
	if p1.res != p2.res {
		t.Fatal("same-epoch same-options partition not served from cache")
	}
	p3, err := g.Partition(PartitionOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p3.res == p1.res || p3.K() != 2 {
		t.Fatal("different K must rebuild")
	}
	m, err := g.BeginMutation()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddEdge([]uint32{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.RelabelByPartition(p3); err == nil {
		t.Fatal("stale partition must be rejected after a commit")
	}
	p4, err := g.Partition(PartitionOptions{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if p4.res == p3.res || p4.Epoch() != g.Epoch() {
		t.Fatal("commit must invalidate the cached partition")
	}
}

func TestRelabelByPartitionPreservesAnalytics(t *testing.T) {
	g := partitionTestGraph()
	p, err := g.Partition(PartitionOptions{K: 3})
	if err != nil {
		t.Fatal(err)
	}
	rg, rl, err := g.RelabelByPartition(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := rg.hg().Validate(); err != nil {
		t.Fatalf("relabeled hypergraph invalid: %v", err)
	}
	if rg.NumEdges() != g.NumEdges() || rg.NumNodes() != g.NumNodes() {
		t.Fatal("relabeling changed dimensions")
	}
	// Part-contiguity: new hyperedge IDs walk the parts in order.
	parts := p.EdgeParts()
	for newID := 1; newID < len(rl.EdgePerm); newID++ {
		if parts[rl.EdgePerm[newID]] < parts[rl.EdgePerm[newID-1]] {
			t.Fatal("hyperedge IDs not part-contiguous after relabeling")
		}
	}
	for _, s := range []int{1, 2} {
		want, err := g.SConnectedComponentsDirectCtx(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := rg.SConnectedComponentsDirectCtx(context.Background(), s)
		if err != nil {
			t.Fatal(err)
		}
		// Mapped-back labels must induce the same partition of hyperedges
		// (representatives are consistent per class, not necessarily the
		// original minimum).
		back := rl.ApplyRelabeling(got)
		fwd := make(map[uint32]uint32)
		rev := make(map[uint32]uint32)
		for e := range want {
			if b, ok := fwd[want[e]]; ok && b != back[e] {
				t.Fatalf("s=%d: component %d split by relabeling at hyperedge %d", s, want[e], e)
			}
			if w, ok := rev[back[e]]; ok && w != want[e] {
				t.Fatalf("s=%d: components merged by relabeling at hyperedge %d", s, e)
			}
			fwd[want[e]] = back[e]
			rev[back[e]] = want[e]
			// The representative must at least be a member of the class.
			if want[back[e]] != want[e] {
				t.Fatalf("s=%d: representative %d not in hyperedge %d's component", s, back[e], e)
			}
		}
	}
}

func TestSConnectedComponentsShardedMatchesDirect(t *testing.T) {
	g := partitionTestGraph()
	for _, s := range []int{1, 2} {
		for _, k := range []int{0, 1, 3} {
			want, err := g.SConnectedComponentsDirectCtx(context.Background(), s)
			if err != nil {
				t.Fatal(err)
			}
			got, err := g.SConnectedComponentsSharded(s, k)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("s=%d k=%d: %d labels, want %d", s, k, len(got), len(want))
			}
			for e := range want {
				if got[e] != want[e] {
					t.Fatalf("s=%d k=%d: label[%d] = %d, want %d", s, k, e, got[e], want[e])
				}
			}
		}
	}
}

func TestShardedSCCCancelled(t *testing.T) {
	g := partitionTestGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := g.SConnectedComponentsShardedCtx(ctx, 2, 2); err == nil {
		t.Fatal("cancelled sharded s-CC must return the context error")
	}
}
