package nwhy

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"nwhy/internal/core"
	"nwhy/internal/slinegraph"
	"nwhy/internal/smetrics"
	"nwhy/internal/unionfind"
)

// ErrMutationConflict is returned by Commit when another mutation committed
// since BeginMutation: the batch was built against a stale snapshot and
// must be replayed against the current one.
var ErrMutationConflict = errors.New("nwhy: concurrent mutation committed first; begin a new mutation and replay")

// maxMutLogDepth bounds the per-snapshot dirty-log chain. An incremental
// consumer more than this many commits behind rebuilds from scratch instead
// of replaying the chain, and snapshots never retain unbounded history.
const maxMutLogDepth = 64

// stateBox holds a handle's current snapshot behind one atomic pointer. It
// is shared (never copied) by every WithEngine copy of the handle.
type stateBox struct {
	cur atomic.Pointer[snapshot]
}

// newStateBox seals h into a fresh epoch-0 box. This constructor and snap
// are the only direct readers of the atomic pointer; every later version
// is published through Commit's compare-and-swap below.
func newStateBox(h *core.Hypergraph) *stateBox {
	st := &stateBox{}
	st.cur.Store(&snapshot{h: h})
	return st
}

// snap loads the current snapshot. Methods reading the hypergraph more than
// once bind the result to a local so one call never straddles a Commit.
func (g *NWHypergraph) snap() *snapshot { return g.state.cur.Load() }

// snapshot is one frozen version of the hypergraph: the immutable CSR pair
// plus the mutation metadata incremental consumers key on. Snapshots are
// immutable once stored; Commit replaces the pointer, never the contents.
type snapshot struct {
	h *core.Hypergraph
	// epoch counts committed mutation batches since construction.
	epoch uint64
	// del counts hyperedge deletions cumulatively across all commits — the
	// tombstone epoch. While it is unchanged between two snapshots, the
	// difference between them is insert-only and incrementally absorbable.
	del uint64
	// log chains the per-commit inserted-edge IDs backwards in time (nil at
	// epoch 0 or past maxMutLogDepth).
	log *mutLog
}

// mutLog records the hyperedge IDs inserted by the commit that produced
// epoch. prev points at the previous commit's entry.
type mutLog struct {
	epoch uint64
	dirty []uint32
	prev  *mutLog
	depth int
}

// dirtySince collects the hyperedge IDs inserted between sinceEpoch and
// snap's epoch, oldest first. ok is false when the log chain no longer
// reaches back to sinceEpoch (history truncated) — the caller must fall
// back to a full recompute. The caller is responsible for checking that no
// deletions happened in the span (snapshot.del equality); with none, every
// returned ID is a fresh append, never a recycled slot.
func dirtySince(snap *snapshot, sinceEpoch uint64) ([]uint32, bool) {
	if snap.epoch == sinceEpoch {
		return nil, true
	}
	var spans [][]uint32
	l := snap.log
	for l != nil && l.epoch > sinceEpoch {
		spans = append(spans, l.dirty)
		l = l.prev
	}
	reached := (l == nil && sinceEpoch == 0 && uint64(len(spans)) == snap.epoch) ||
		(l != nil && l.epoch == sinceEpoch)
	if !reached {
		return nil, false
	}
	var out []uint32
	for i := len(spans) - 1; i >= 0; i-- {
		out = append(out, spans[i]...)
	}
	return out, true
}

// Mutation is an uncommitted batch of hyperedge insertions and removals
// against one snapshot of the handle. It is single-writer (not safe for
// concurrent use); readers of the handle are unaffected until Commit swaps
// the new snapshot in. A batch whose Commit loses the race against another
// writer fails with ErrMutationConflict and changes nothing.
type Mutation struct {
	g    *NWHypergraph
	base *snapshot
	dyn  *core.DynamicHypergraph
	done bool
}

// BeginMutation opens a mutation batch against the current snapshot.
// Weighted hypergraphs are not mutable (the mutation surface carries no
// incidence weights).
func (g *NWHypergraph) BeginMutation() (*Mutation, error) {
	base := g.snap()
	dyn, err := core.NewDynamic(base.h)
	if err != nil {
		return nil, err
	}
	return &Mutation{g: g, base: base, dyn: dyn}, nil
}

// AddEdge stages a hyperedge over members (deduplicated, non-empty) and
// returns its ID: fresh, or recycled from an earlier removal.
func (m *Mutation) AddEdge(members []uint32) (uint32, error) {
	if m.done {
		return 0, errMutationDone
	}
	return m.dyn.AddEdge(members)
}

// RemoveEdge stages the removal of hyperedge e.
func (m *Mutation) RemoveEdge(e uint32) error {
	if m.done {
		return errMutationDone
	}
	return m.dyn.RemoveEdge(e)
}

// NewNodeID returns a hypernode ID unused by any live hyperedge in the
// batch's view — recycled from hypernodes isolated by removals when
// possible, fresh otherwise.
func (m *Mutation) NewNodeID() (uint32, error) {
	if m.done {
		return 0, errMutationDone
	}
	return m.dyn.NewNodeID(), nil
}

// Edges reports the batch's current hyperedge ID space; Inserts and Deletes
// report the staged operation counts.
func (m *Mutation) Edges() int   { return m.dyn.NumEdges() }
func (m *Mutation) Inserts() int { return m.dyn.Inserts() }
func (m *Mutation) Deletes() int { return m.dyn.Deletes() }

var errMutationDone = errors.New("nwhy: mutation already committed")

// Commit compacts the batch into a fresh frozen snapshot and atomically
// swaps it in. See CommitCtx.
func (m *Mutation) Commit() error { return m.CommitCtx(context.Background()) }

// CommitCtx is Commit bounded by ctx. The staged overlay folds into a new
// CSR pair on the handle's engine (removed IDs stay as empty rows, so the
// ID space is stable), then a compare-and-swap publishes the snapshot: it
// fails with ErrMutationConflict if another batch committed since
// BeginMutation, leaving the handle untouched. An empty batch commits as a
// no-op without an epoch bump. A committed (or conflicted) batch is spent.
func (m *Mutation) CommitCtx(ctx context.Context) error {
	if m.done {
		return errMutationDone
	}
	if m.dyn.Inserts() == 0 && m.dyn.Deletes() == 0 {
		m.done = true
		return nil
	}
	eng := m.g.engine().WithContext(ctx)
	h, err := m.dyn.Snapshot(eng)
	if err != nil {
		return err
	}
	next := &snapshot{
		h:     h,
		epoch: m.base.epoch + 1,
		del:   m.base.del + uint64(m.dyn.Deletes()),
	}
	log := &mutLog{
		epoch: next.epoch,
		dirty: append([]uint32(nil), m.dyn.Dirty()...),
		prev:  m.base.log,
		depth: 1,
	}
	if m.base.log != nil {
		if m.base.log.depth >= maxMutLogDepth {
			log.prev = nil // truncate history; laggards do a full recompute
		} else {
			log.depth = m.base.log.depth + 1
		}
	}
	next.log = log
	m.done = true
	if !m.g.state.cur.CompareAndSwap(m.base, next) {
		return ErrMutationConflict
	}
	return nil
}

// Mutate runs one batch under fn and commits it — the convenience wrapper
// for callers without staging needs.
func (g *NWHypergraph) Mutate(fn func(m *Mutation) error) error {
	m, err := g.BeginMutation()
	if err != nil {
		return err
	}
	if err := fn(m); err != nil {
		return err
	}
	return m.Commit()
}

// IncrementalSCC maintains the s-connected components of the hyperedges
// across mutations. The first Labels call computes them from scratch and
// keeps the union-find forest; after insert-only commits, later calls grow
// the forest and absorb only the pairs incident to the inserted hyperedges
// (inserting a hyperedge never changes the overlap between existing ones);
// a deletion moves the tombstone epoch and forces a full recompute. Safe
// for concurrent Labels calls (internally serialized).
type IncrementalSCC struct {
	g *NWHypergraph
	s int

	mu     sync.Mutex
	forest *unionfind.Forest
	epoch  uint64
	del    uint64
	have   bool

	incrementals, fulls int
}

// IncrementalSCC creates a maintained s-CC view over the handle. Nothing is
// computed until the first Labels call.
func (g *NWHypergraph) IncrementalSCC(s int) *IncrementalSCC {
	return &IncrementalSCC{g: g, s: s}
}

// S reports the overlap threshold the view maintains.
func (c *IncrementalSCC) S() int { return c.s }

// Counts reports how many Labels calls resolved incrementally (cache hits
// included) versus by full recompute — the observable the mutate benchmark
// and the differential tests key on.
func (c *IncrementalSCC) Counts() (incrementals, fulls int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.incrementals, c.fulls
}

// Labels returns the current component labels over [0, NumEdges()): edges
// in one s-component share the minimum member ID, dead (removed) IDs are
// singletons. incremental reports whether the result was served without a
// full recompute. The returned slice is the caller's to keep.
func (c *IncrementalSCC) Labels(ctx context.Context) (labels []uint32, incremental bool, err error) {
	snap := c.g.snap()
	c.mu.Lock()
	defer c.mu.Unlock()
	eng := c.g.engine().WithContext(ctx)
	in := slinegraph.FromHypergraph(snap.h)
	switch {
	case c.have && c.epoch == snap.epoch:
		// Current: serve the cached forest.
		c.incrementals++
		return c.labelsLocked(snap), true, nil
	case c.have && c.del == snap.del:
		// Insert-only gap: absorb if the dirty log still reaches back.
		if dirty, ok := dirtySince(snap, c.epoch); ok {
			c.forest.Grow(snap.h.NumEdges())
			delta, derr := slinegraph.ConstructDirty(eng, in, c.s, dirty, slinegraph.Options{})
			if derr != nil {
				return nil, false, derr
			}
			if aerr := slinegraph.AbsorbPairs(eng, c.forest, delta); aerr != nil {
				return nil, false, aerr
			}
			c.epoch = snap.epoch
			c.incrementals++
			return c.labelsLocked(snap), true, nil
		}
	}
	forest, ferr := slinegraph.SComponentsForest(eng, in, c.s, slinegraph.Options{})
	if ferr != nil {
		return nil, false, ferr
	}
	c.forest, c.epoch, c.del, c.have = forest, snap.epoch, snap.del, true
	c.fulls++
	return c.labelsLocked(snap), false, nil
}

// labelsLocked copies the forest labels out, truncated to the edge space.
func (c *IncrementalSCC) labelsLocked(snap *snapshot) []uint32 {
	l := c.forest.Labels()[:snap.h.NumEdges()]
	return append([]uint32(nil), l...)
}

// Refresh classifies how RefreshSLineGraph brought a handle up to date.
type Refresh int

const (
	// RefreshCurrent: the handle already matched the snapshot; returned as is.
	RefreshCurrent Refresh = iota
	// RefreshPatched: the cached pairs were patched with the dirty-edge
	// delta only — no full construction ran.
	RefreshPatched
	// RefreshRebuilt: a full construction ran (deletions, truncated history,
	// or a handle this maintenance path does not cover).
	RefreshRebuilt
)

func (r Refresh) String() string {
	switch r {
	case RefreshCurrent:
		return "current"
	case RefreshPatched:
		return "patched"
	default:
		return "rebuilt"
	}
}

// RefreshSLineGraph brings a previously constructed s-line graph up to the
// handle's current snapshot. See RefreshSLineGraphCtx.
func (g *NWHypergraph) RefreshSLineGraph(lg *SLineGraph, o ConstructOptions) (*SLineGraph, Refresh, error) {
	return g.RefreshSLineGraphCtx(context.Background(), lg, o)
}

// RefreshSLineGraphCtx brings lg up to the current snapshot. A handle at
// the current epoch is returned unchanged; after insert-only commits the
// overlap kernel re-runs only for the inserted (dirty) hyperedges and the
// cached pairs are patched with the delta (inserting a hyperedge cannot
// change the overlap of existing pairs, so the patch is exact); deletions
// or truncated history rebuild from scratch with the same options. Only
// hyperedge-side (edges=true) unweighted handles are patchable — others
// always rebuild.
func (g *NWHypergraph) RefreshSLineGraphCtx(ctx context.Context, lg *SLineGraph, o ConstructOptions) (*SLineGraph, Refresh, error) {
	if lg == nil {
		return nil, RefreshRebuilt, fmt.Errorf("nwhy: RefreshSLineGraph of nil handle")
	}
	snap := g.snap()
	s := lg.SLineGraph.S
	if lg.epoch == snap.epoch {
		return lg, RefreshCurrent, nil
	}
	if lg.overEdges && lg.del == snap.del {
		if dirty, ok := dirtySince(snap, lg.epoch); ok {
			eng := g.engine().WithContext(ctx)
			in := slinegraph.FromHypergraph(snap.h)
			delta, err := slinegraph.ConstructDirty(eng, in, s, dirty, o.internal())
			if err != nil {
				return nil, RefreshRebuilt, err
			}
			pairs := slinegraph.MergeCanonical(eng, lg.Pairs(), delta)
			if err := eng.Err(); err != nil {
				return nil, RefreshRebuilt, err
			}
			nl := smetrics.BuildWith(eng, snap.h, s, pairs)
			if err := eng.Err(); err != nil {
				return nil, RefreshRebuilt, err
			}
			return &SLineGraph{SLineGraph: nl.WithEngine(g.engine()), epoch: snap.epoch, del: snap.del, overEdges: true},
				RefreshPatched, nil
		}
	}
	nl, err := g.SLineGraphCtx(ctx, s, lg.overEdges, o)
	if err != nil {
		return nil, RefreshRebuilt, err
	}
	return nl, RefreshRebuilt, nil
}
