package nwhy

// End-to-end integration tests: full pipelines from generation through IO,
// representation conversion, construction algorithms, and analytics —
// exercising the package boundaries the unit tests cover in isolation.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"nwhy/internal/core"
	"nwhy/internal/gen"
	"nwhy/internal/mmio"
	"nwhy/internal/slinegraph"
	"nwhy/internal/sparse"
)

// TestPipelineGenerateSaveLoadAnalyze: generator -> Matrix Market file ->
// Load -> every representation -> exact + approximate analytics agree with
// the in-memory original.
func TestPipelineGenerateSaveLoadAnalyze(t *testing.T) {
	orig := Wrap(gen.Community(gen.CommunityConfig{
		NumEdges: 300, NumNodes: 150, MeanEdgeSize: 6,
		SizeSkew: 1.5, MemberSkew: 0.4, Seed: 42,
	}))
	path := filepath.Join(t.TempDir(), "pipe.mtx")
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumEdges() != orig.NumEdges() || loaded.NumIncidences() != orig.NumIncidences() {
		t.Fatal("shape changed through file round trip")
	}

	// Exact analytics must be identical on both handles.
	ccA := orig.ConnectedComponents(CCHyper)
	ccB := loaded.ConnectedComponents(CCAdjoinAfforest)
	if !reflect.DeepEqual(ccA.EdgeComp, ccB.EdgeComp) {
		t.Fatal("CC differs between original and file-loaded hypergraph")
	}
	bfsA := orig.BFS(0, BFSTopDown)
	bfsB := loaded.BFS(0, BFSAdjoin)
	if !reflect.DeepEqual(bfsA.EdgeLevel, bfsB.EdgeLevel) {
		t.Fatal("BFS differs between original and file-loaded hypergraph")
	}

	// Approximate analytics: identical line graphs.
	for s := 1; s <= 3; s++ {
		a := orig.SLineGraph(s, true)
		b := loaded.SLineGraphWith(s, true, ConstructOptions{Algorithm: AlgoQueueIntersection, UseAdjoin: true})
		if !reflect.DeepEqual(a.Pairs(), b.Pairs()) {
			t.Fatalf("s=%d line graphs differ across pipeline", s)
		}
	}
}

// TestPipelineAdjoinFileFlow: write MM, read it in adjoin form directly
// (graph_reader_adjoin), and verify algorithms on the adjoin graph match
// the bipartite path.
func TestPipelineAdjoinFileFlow(t *testing.T) {
	orig := Wrap(gen.Uniform(200, 200, 5, 7))
	path := filepath.Join(t.TempDir(), "adjoin.mtx")
	if err := orig.Save(path); err != nil {
		t.Fatal(err)
	}
	el, ne, nv, err := mmio.GraphReaderAdjoin(path)
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.FromAdjoinEdgeList(el, ne, nv)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	got, _ := core.AdjoinCC(SharedEngine(), a, core.AdjoinAfforest)
	want := orig.ConnectedComponents(CCHyper)
	if !reflect.DeepEqual(got.EdgeComp, want.EdgeComp) || !reflect.DeepEqual(got.NodeComp, want.NodeComp) {
		t.Fatal("adjoin-file CC differs from bipartite CC")
	}
	// Queue construction on the file-loaded adjoin graph.
	pairs, _ := slinegraph.QueueHashmap(SharedEngine(), slinegraph.FromAdjoin(a), 2, slinegraph.Options{})
	wantPairs := orig.SLineGraph(2, true).Pairs()
	if !reflect.DeepEqual(pairs, wantPairs) {
		t.Fatal("adjoin-file s-line graph differs")
	}
}

// TestPipelineTSVInterop: TSV write -> TSV read -> same hypergraph.
func TestPipelineTSVInterop(t *testing.T) {
	orig := Wrap(gen.BipartitePowerLaw(150, 200, 1200, 1.8, 3))
	bel := sparse.NewBiEdgeList(orig.NumEdges(), orig.NumNodes())
	for e := 0; e < orig.NumEdges(); e++ {
		for _, v := range orig.Incidence(e) {
			bel.Add(uint32(e), v)
		}
	}
	path := filepath.Join(t.TempDir(), "h.tsv")
	f, err := createFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := mmio.WriteTSV(f, bel); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	back, err := mmio.ReadTSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back.Dedup()
	bel.Dedup()
	if !reflect.DeepEqual(back.Edges, bel.Edges) {
		t.Fatal("TSV interop changed the incidence set")
	}
}

// TestPipelineCollapseThenAnalyze: collapsing duplicates must not change
// the component structure seen by the representatives.
func TestPipelineCollapseThenAnalyze(t *testing.T) {
	// Build with deliberate duplicate hyperedges.
	sets := [][]uint32{
		{0, 1}, {0, 1}, {1, 2}, {3, 4}, {3, 4}, {3, 4},
	}
	hg := FromSets(sets, 5)
	collapsed, classes := hg.CollapseEdges()
	if collapsed.NumEdges() != 3 {
		t.Fatalf("collapsed to %d", collapsed.NumEdges())
	}
	ccFull := hg.ConnectedComponents(CCHyper)
	ccColl := collapsed.ConnectedComponents(CCHyper)
	// Labels live in the shared ID space, which shrinks when edges collapse
	// — compare the induced node *partitions* instead of raw labels.
	samePartition := func(a, b []uint32) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			for j := i + 1; j < len(a); j++ {
				if (a[i] == a[j]) != (b[i] == b[j]) {
					return false
				}
			}
		}
		return true
	}
	if !samePartition(ccFull.NodeComp, ccColl.NodeComp) {
		t.Fatalf("node partition changed by collapse: %v vs %v", ccFull.NodeComp, ccColl.NodeComp)
	}
	// Every class member had the same component in the full hypergraph.
	for _, class := range classes {
		for _, e := range class[1:] {
			if ccFull.EdgeComp[e] != ccFull.EdgeComp[class[0]] {
				t.Fatal("duplicate edges in different components?!")
			}
		}
	}
}

// TestPipelineWeightedAgainstPlain: the weighted construction, the plain
// construction, the ensemble, and the direct component path must all tell
// one consistent story on a generated workload.
func TestPipelineWeightedAgainstPlain(t *testing.T) {
	hg := Wrap(gen.RMAT(256, 256, 3000, 0.5, 0.2, 0.2, 9))
	ss := []int{1, 2, 3}
	ens := hg.SLineGraphEnsemble(ss, true)
	ensQ := hg.SLineGraphEnsembleQueue(ss, true)
	for _, s := range ss {
		plain := hg.SLineGraph(s, true)
		weighted := hg.SLineGraphWeighted(s)
		if plain.NumEdges() != weighted.NumEdges() {
			t.Fatalf("s=%d: weighted pair count differs", s)
		}
		if !reflect.DeepEqual(ens[s].Pairs(), plain.Pairs()) {
			t.Fatalf("s=%d: ensemble differs", s)
		}
		if !reflect.DeepEqual(ensQ[s].Pairs(), plain.Pairs()) {
			t.Fatalf("s=%d: queue ensemble differs", s)
		}
		// Components via line graph CC == direct union-find.
		viaGraph := plain.SConnectedComponents()
		direct := hg.SConnectedComponentsDirect(s)
		if !reflect.DeepEqual(viaGraph, direct) {
			t.Fatalf("s=%d: component paths disagree", s)
		}
		// Every weighted strength is >= s.
		for _, p := range weighted.Strengths {
			if p.Overlap < s {
				t.Fatalf("s=%d: strength %d below threshold", s, p.Overlap)
			}
		}
	}
}

// TestPipelineEverythingOnPreset runs the full metric surface once on a
// small preset: smoke coverage that nothing panics and invariants hold
// together.
func TestPipelineEverythingOnPreset(t *testing.T) {
	p, err := gen.ByName("livejournal-mini")
	if err != nil {
		t.Fatal(err)
	}
	hg := Wrap(p.Build(0.02))
	if err := hg.Validate(); err != nil {
		t.Fatal(err)
	}
	_ = hg.Stats()
	_ = hg.EdgeSizeDist()
	_ = hg.NodeDegreeDist()
	_ = hg.Toplexes()
	_ = hg.HyperPageRank(0.85, 1e-8, 100)
	_ = hg.HyperCoreness()
	tr := hg.HyperTree(0)
	if !tr.Verify(hg.Hypergraph()) {
		t.Fatal("hypertree invalid")
	}
	eBC, nBC := hg.AdjoinBetweenness(true)
	if len(eBC) != hg.NumEdges() || len(nBC) != hg.NumNodes() {
		t.Fatal("adjoin BC lengths wrong")
	}
	lg := hg.SLineGraph(2, true)
	_ = lg.SBetweennessCentrality(true)
	_ = lg.SClosenessCentrality()
	_ = lg.SHarmonicClosenessCentrality()
	_ = lg.SEccentricity()
	_ = lg.SPageRank(0.85, 1e-8, 50)
	_ = lg.SCoreness()
	_ = lg.SMaximalIndependentSet(1)
	wl := hg.SLineGraphWeighted(2)
	_ = wl.SBetweennessCentralityWeighted(true)
	_ = wl.SClosenessCentralityWeighted()
	_ = wl.SEccentricityWeighted()
}

// createFile is a tiny wrapper so the TSV test reads naturally.
func createFile(path string) (*os.File, error) { return os.Create(path) }
