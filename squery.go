package nwhy

import (
	"context"

	"nwhy/internal/smetrics"
)

// This file is the request-shaped s-metric query surface: every query an
// SLineGraph (or WeightedSLineGraph) handle answers has a *Ctx variant that
// takes a context.Context, runs the kernel on a context-bound engine derived
// for just that call, and reports ctx.Err() if the computation was aborted.
// None of these mutate the receiver, so one cached handle (e.g. in
// internal/server's result cache) can serve many concurrent requests, each
// under its own deadline.

// onCtx derives a one-call smetrics handle observing ctx. The receiver's own
// engine binding is untouched.
func (l *SLineGraph) onCtx(ctx context.Context) *smetrics.SLineGraph {
	return l.SLineGraph.WithEngine(l.SLineGraph.Engine().WithContext(ctx))
}

// finish resolves the (result, ctx-error) pair every *Ctx variant returns.
func finish[T any](s *smetrics.SLineGraph, out T) (T, error) {
	if err := s.Engine().Err(); err != nil {
		var zero T
		return zero, err
	}
	return out, nil
}

// SConnectedComponentsCtx is SConnectedComponents bounded by ctx.
func (l *SLineGraph) SConnectedComponentsCtx(ctx context.Context) ([]uint32, error) {
	s := l.onCtx(ctx)
	return finish(s, s.SConnectedComponents())
}

// IsSConnectedCtx is IsSConnected bounded by ctx.
func (l *SLineGraph) IsSConnectedCtx(ctx context.Context) (bool, error) {
	s := l.onCtx(ctx)
	return finish(s, s.IsSConnected())
}

// SDistanceCtx is SDistance bounded by ctx.
func (l *SLineGraph) SDistanceCtx(ctx context.Context, src, dst int) (int, error) {
	s := l.onCtx(ctx)
	return finish(s, s.SDistance(src, dst))
}

// SPathCtx is SPath bounded by ctx.
func (l *SLineGraph) SPathCtx(ctx context.Context, src, dst int) ([]uint32, error) {
	s := l.onCtx(ctx)
	return finish(s, s.SPath(src, dst))
}

// SBetweennessCentralityCtx is SBetweennessCentrality bounded by ctx.
func (l *SLineGraph) SBetweennessCentralityCtx(ctx context.Context, normalized bool) ([]float64, error) {
	s := l.onCtx(ctx)
	return finish(s, s.SBetweennessCentrality(normalized))
}

// SClosenessCentralityCtx is SClosenessCentrality bounded by ctx.
func (l *SLineGraph) SClosenessCentralityCtx(ctx context.Context) ([]float64, error) {
	s := l.onCtx(ctx)
	return finish(s, s.SClosenessCentrality())
}

// SHarmonicClosenessCentralityCtx is SHarmonicClosenessCentrality bounded by
// ctx.
func (l *SLineGraph) SHarmonicClosenessCentralityCtx(ctx context.Context) ([]float64, error) {
	s := l.onCtx(ctx)
	return finish(s, s.SHarmonicClosenessCentrality())
}

// SEccentricityCtx is SEccentricity bounded by ctx.
func (l *SLineGraph) SEccentricityCtx(ctx context.Context) ([]float64, error) {
	s := l.onCtx(ctx)
	return finish(s, s.SEccentricity())
}

// SDiameterCtx is SDiameter bounded by ctx.
func (l *SLineGraph) SDiameterCtx(ctx context.Context) (float64, error) {
	s := l.onCtx(ctx)
	return finish(s, s.SDiameter())
}

// SPageRankCtx is SPageRank bounded by ctx.
func (l *SLineGraph) SPageRankCtx(ctx context.Context, damping, tol float64, maxIter int) ([]float64, error) {
	s := l.onCtx(ctx)
	return finish(s, s.SPageRank(damping, tol, maxIter))
}

// onCtx derives a one-call weighted smetrics handle observing ctx.
func (l *WeightedSLineGraph) onCtx(ctx context.Context) *smetrics.WeightedSLineGraph {
	return l.WeightedSLineGraph.WithEngine(l.Engine().WithContext(ctx))
}

// finishW resolves the (result, ctx-error) pair for the weighted variants.
func finishW[T any](s *smetrics.WeightedSLineGraph, out T) (T, error) {
	if err := s.Engine().Err(); err != nil {
		var zero T
		return zero, err
	}
	return out, nil
}

// SDistanceWeightedCtx is SDistanceWeighted bounded by ctx.
func (l *WeightedSLineGraph) SDistanceWeightedCtx(ctx context.Context, src, dst int) (float64, error) {
	s := l.onCtx(ctx)
	return finishW(s, s.SDistanceWeighted(src, dst))
}

// SPathWeightedCtx is SPathWeighted bounded by ctx.
func (l *WeightedSLineGraph) SPathWeightedCtx(ctx context.Context, src, dst int) ([]uint32, error) {
	s := l.onCtx(ctx)
	return finishW(s, s.SPathWeighted(src, dst))
}

// SBetweennessCentralityWeightedCtx is SBetweennessCentralityWeighted
// bounded by ctx.
func (l *WeightedSLineGraph) SBetweennessCentralityWeightedCtx(ctx context.Context, normalized bool) ([]float64, error) {
	s := l.onCtx(ctx)
	return finishW(s, s.SBetweennessCentralityWeighted(normalized))
}

// SClosenessCentralityWeightedCtx is SClosenessCentralityWeighted bounded by
// ctx.
func (l *WeightedSLineGraph) SClosenessCentralityWeightedCtx(ctx context.Context) ([]float64, error) {
	s := l.onCtx(ctx)
	return finishW(s, s.SClosenessCentralityWeighted())
}

// SHarmonicClosenessCentralityWeightedCtx is
// SHarmonicClosenessCentralityWeighted bounded by ctx.
func (l *WeightedSLineGraph) SHarmonicClosenessCentralityWeightedCtx(ctx context.Context) ([]float64, error) {
	s := l.onCtx(ctx)
	return finishW(s, s.SHarmonicClosenessCentralityWeighted())
}

// SEccentricityWeightedCtx is SEccentricityWeighted bounded by ctx.
func (l *WeightedSLineGraph) SEccentricityWeightedCtx(ctx context.Context) ([]float64, error) {
	s := l.onCtx(ctx)
	return finishW(s, s.SEccentricityWeighted())
}
