package nwhy

import (
	"context"
	"fmt"

	"nwhy/internal/core"
	"nwhy/internal/partition"
	"nwhy/internal/slinegraph"
)

// PartitionOptions configure Partition and the sharded execution paths
// built on it. The zero value of every field but K selects the partitioner
// defaults.
type PartitionOptions struct {
	// K is the number of parts (required, >= 1).
	K int
	// CoarsenRounds bounds the label-propagation coarsening rounds (0: 8).
	CoarsenRounds int
	// RefineRounds bounds the boundary-refinement passes (0: 4).
	RefineRounds int
	// ImbalanceTol is the allowed node imbalance epsilon: every part holds
	// at most ceil(|V|/K · (1+tol)) hypernodes (0: 0.05).
	ImbalanceTol float64
}

func (o PartitionOptions) internal() partition.Options {
	return partition.Options{
		K:             o.K,
		CoarsenRounds: o.CoarsenRounds,
		RefineRounds:  o.RefineRounds,
		ImbalanceTol:  o.ImbalanceTol,
	}
}

// HyperPartition is a computed k-way partition of a handle's snapshot,
// pinned to the mutation epoch it was computed from.
type HyperPartition struct {
	res   *partition.Result
	epoch uint64
}

// K reports the part count.
func (p *HyperPartition) K() int { return p.res.K }

// Cut reports the connectivity metric Σ_e (λ(e) − 1) of the partition.
func (p *HyperPartition) Cut() int64 { return p.res.Cut }

// Epoch reports the mutation epoch the partition was computed from.
func (p *HyperPartition) Epoch() uint64 { return p.epoch }

// NodeParts returns the per-hypernode part assignment. The slice aliases
// the partition's storage and must not be modified.
func (p *HyperPartition) NodeParts() []uint32 { return p.res.NodeParts }

// EdgeParts returns the per-hyperedge owner assignment (plurality of pins).
// The slice aliases the partition's storage and must not be modified.
func (p *HyperPartition) EdgeParts() []uint32 { return p.res.EdgeParts }

// Partition computes (or serves from the epoch-keyed cache) a balanced,
// connectivity-minimizing k-way partition of the hypergraph: parallel
// label-propagation coarsening, greedy balanced seeding, and λ−1
// boundary refinement, deterministic across runs and worker counts.
func (g *NWHypergraph) Partition(o PartitionOptions) (*HyperPartition, error) {
	return g.PartitionCtx(context.Background(), o)
}

// PartitionCtx is Partition bounded by ctx: coarsening and refinement
// observe cancellation between rounds. A cancelled build is not cached.
func (g *NWHypergraph) PartitionCtx(ctx context.Context, o PartitionOptions) (*HyperPartition, error) {
	snap := g.snap()
	eng := g.engine().WithContext(ctx)
	opts := o.internal()
	lz := g.lazy
	if lz == nil {
		res, err := partition.Partition(eng, snap.h, opts)
		if err != nil {
			return nil, err
		}
		return &HyperPartition{res: res, epoch: snap.epoch}, nil
	}
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if lz.part == nil || lz.partEpoch != snap.epoch || lz.partOpts != opts {
		res, err := partition.Partition(eng, snap.h, opts)
		if err != nil {
			return nil, err
		}
		if eng.Err() != nil {
			return &HyperPartition{res: res, epoch: snap.epoch}, nil
		}
		lz.part = res
		lz.partEpoch = snap.epoch
		lz.partOpts = opts
		// A new partition invalidates any shard map derived from the old one.
		lz.shards = nil
	}
	return &HyperPartition{res: lz.part, epoch: snap.epoch}, nil
}

// Relabeling records the permutations RelabelByPartition applied, for
// mapping query results between the old and new ID spaces:
// EdgePerm[newID] = oldID and EdgeInv[oldID] = newID (likewise for nodes).
type Relabeling struct {
	EdgePerm, EdgeInv []uint32
	NodePerm, NodeInv []uint32
}

// RelabelByPartition returns a new handle over a copy of the hypergraph
// whose hyperedge and hypernode IDs are renumbered part-contiguously in p's
// partition order: each part's IDs form one dense block, making CSR
// neighborhoods cache-contiguous for traversals and the s-overlap kernel.
// The original handle is untouched; the returned Relabeling maps results
// between the two ID spaces. p must come from this handle's current epoch.
func (g *NWHypergraph) RelabelByPartition(p *HyperPartition) (*NWHypergraph, *Relabeling, error) {
	snap := g.snap()
	if p == nil || p.epoch != snap.epoch {
		return nil, nil, fmt.Errorf("nwhy: partition is stale (epoch %d, handle at %d)", p.Epoch(), snap.epoch)
	}
	eng := g.engine()
	edgePerm, edgeInv := partition.PermFromParts(eng, p.res.EdgeParts)
	nodePerm, nodeInv := partition.PermFromParts(eng, p.res.NodeParts)
	rh := core.Relabel(snap.h, edgePerm, nodePerm)
	return newHandle(rh, g.eng), &Relabeling{
		EdgePerm: edgePerm, EdgeInv: edgeInv,
		NodePerm: nodePerm, NodeInv: nodeInv,
	}, nil
}

// shardMap returns the epoch-keyed cached shard map for k parts, building
// the partition (default options) and shard set on first use.
func (g *NWHypergraph) shardMap(ctx context.Context, k int) (*partition.ShardMap, error) {
	snap := g.snap()
	eng := g.engine().WithContext(ctx)
	build := func() (*partition.ShardMap, error) {
		res, err := partition.Partition(eng, snap.h, partition.Options{K: k})
		if err != nil {
			return nil, err
		}
		return partition.BuildShardMap(eng, snap.h, res)
	}
	lz := g.lazy
	if lz == nil {
		return build()
	}
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if lz.shards == nil || lz.shardsEpoch != snap.epoch || lz.shards.K != k {
		sm, err := build()
		if err != nil {
			return nil, err
		}
		if eng.Err() != nil {
			return sm, nil
		}
		lz.shards = sm
		lz.shardsEpoch = snap.epoch
	}
	return lz.shards, nil
}

// SConnectedComponentsSharded computes the exact s-connected components of
// the hyperedges by cutting the hypergraph into k shards (halo boundaries
// included), running the union-find s-overlap kernel on one dedicated
// engine per shard, and absorbing the local forests across the halos.
// Labels are identical to SConnectedComponentsDirect: component = minimum
// member hyperedge ID. k < 1 picks a shard count from the engine's worker
// budget. The shard map is cached per (epoch, k).
func (g *NWHypergraph) SConnectedComponentsSharded(s, k int) ([]uint32, error) {
	return g.SConnectedComponentsShardedCtx(context.Background(), s, k)
}

// SConnectedComponentsShardedCtx is SConnectedComponentsSharded bounded by
// ctx: partitioning, shard construction, and every per-shard kernel observe
// cancellation and return ctx's error.
func (g *NWHypergraph) SConnectedComponentsShardedCtx(ctx context.Context, s, k int) ([]uint32, error) {
	eng := g.engine().WithContext(ctx)
	if k < 1 {
		k = eng.NumWorkers()
		if k > 8 {
			k = 8
		}
		if k < 2 {
			k = 2
		}
	}
	sm, err := g.shardMap(ctx, k)
	if err != nil {
		return nil, err
	}
	return partition.SComponentsSharded(eng, sm, s, slinegraph.Options{})
}

// ApplyRelabeling re-expresses a label vector computed in a relabeled
// handle's hyperedge ID space back in the original space: out[oldID] =
// EdgePerm[labels[EdgeInv[oldID]]]. Labels that are themselves hyperedge
// IDs (component representatives) are mapped through EdgePerm too, so each
// class keeps one consistent representative in the original ID space — not
// necessarily the class's minimum original ID.
func (r *Relabeling) ApplyRelabeling(labels []uint32) []uint32 {
	out := make([]uint32, len(labels))
	for oldID := range out {
		out[oldID] = r.EdgePerm[labels[r.EdgeInv[oldID]]]
	}
	return out
}
